package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppressions are //lint:ignore directives collected from one package.
//
// A directive has the form
//
//	//lint:ignore analyzer1,analyzer2 reason for ignoring
//
// and suppresses findings from the named analyzers on the directive's own
// line (trailing comment) and on the line directly below it (standalone
// comment above the offending statement). The reason is mandatory: a
// suppression with no justification is itself reported as a violation.
type Suppressions struct {
	// byLine maps file → line → analyzer names suppressed on that line.
	byLine map[string]map[int][]string
	// Malformed lists directives that don't parse (missing analyzer list
	// or missing reason) or that name an unknown analyzer.
	Malformed []Diagnostic
}

const ignorePrefix = "//lint:ignore"

// CollectSuppressions scans the comment groups of files for //lint:ignore
// directives. knownNames guards against typos in analyzer names; pass nil
// to skip that validation.
func CollectSuppressions(fset *token.FileSet, files []*ast.File, knownNames map[string]bool) *Suppressions {
	s := &Suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, ok := cutSpace(rest)
				if !ok || strings.TrimSpace(reason) == "" || names == "" {
					s.Malformed = append(s.Malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore analyzer[,analyzer] reason`",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						s.Malformed = append(s.Malformed, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "//lint:ignore has an empty analyzer name in its list",
						})
						continue
					}
					if knownNames != nil && !knownNames[name] {
						s.Malformed = append(s.Malformed, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", name),
						})
						continue
					}
					lines := s.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int][]string)
						s.byLine[pos.Filename] = lines
					}
					// The directive covers its own line (trailing form) and
					// the next line (standalone form above the statement).
					lines[pos.Line] = append(lines[pos.Line], name)
					lines[pos.Line+1] = append(lines[pos.Line+1], name)
				}
			}
		}
	}
	return s
}

// cutSpace splits s at its first whitespace run, so tab-indented reasons
// parse the same as space-separated ones.
func cutSpace(s string) (before, after string, found bool) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", false
	}
	return s[:i], strings.TrimLeft(s[i:], " \t"), true
}

// Suppressed reports whether d is covered by a directive.
func (s *Suppressions) Suppressed(d Diagnostic) bool {
	for _, name := range s.byLine[d.Pos.Filename][d.Pos.Line] {
		if name == d.Analyzer {
			return true
		}
	}
	return false
}

// Apply partitions diags into kept and suppressed findings.
func (s *Suppressions) Apply(diags []Diagnostic) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		if s.Suppressed(d) {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
