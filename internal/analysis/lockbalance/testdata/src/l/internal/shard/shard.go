package shard

import "sync"

type node struct {
	mu    sync.RWMutex
	items map[string]int
}

// missingUnlockOnEarlyReturn: the error path returns with mu held.
func (n *node) missingUnlockOnEarlyReturn(key string) int {
	n.mu.Lock() // want "may be held at function exit"
	v, ok := n.items[key]
	if !ok {
		return -1
	}
	n.mu.Unlock()
	return v
}

// okDefer releases on every path via defer.
func (n *node) okDefer(key string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.items[key]
	if !ok {
		return -1
	}
	return v
}

// okBalanced releases on both paths explicitly.
func (n *node) okBalanced(key string) int {
	n.mu.Lock()
	v, ok := n.items[key]
	if !ok {
		n.mu.Unlock()
		return -1
	}
	n.mu.Unlock()
	return v
}

// panicWhileLocked: the panic path exits with the lock held.
func (n *node) panicWhileLocked(key string) int {
	n.mu.Lock() // want "may be held at function exit"
	if n.items == nil {
		panic("no items")
	}
	v := n.items[key]
	n.mu.Unlock()
	return v
}

// rlockLeaked: RLock with an early return missing RUnlock.
func (n *node) rlockLeaked(key string) int {
	n.mu.RLock() // want "RLock\\(\\) may be held at function exit"
	if len(n.items) == 0 {
		return 0
	}
	v := n.items[key]
	n.mu.RUnlock()
	return v
}

// mismatchedUnlock: RLock released with Unlock does not balance.
func (n *node) mismatchedUnlock(key string) int {
	n.mu.RLock() // want "RLock\\(\\) may be held at function exit"
	v := n.items[key]
	n.mu.Unlock()
	return v
}

// byValue passes the lock-bearing struct by value.
func byValue(n node) int { // want "passes lock by value"
	return len(n.items)
}

// wrapped embeds a node by value; still a carrier.
type wrapped struct {
	inner node
}

func byValueNested(w wrapped) int { // want "passes lock by value"
	return len(w.inner.items)
}

// okPointer is the correct signature.
func okPointer(n *node) int {
	return len(n.items)
}

// okDistinctLocks: two different receivers do not alias.
type pair struct {
	a, b node
}

func (p *pair) okDistinct() {
	p.a.mu.Lock()
	p.b.mu.Lock()
	p.b.mu.Unlock()
	p.a.mu.Unlock()
}

// lockedHelper intentionally returns holding the lock; the directive
// documents the contract and keeps the fixture suppression path covered.
func (n *node) lockedHelper() {
	//lint:ignore lockbalance returns holding the lock by contract; caller unlocks
	n.mu.Lock()
}
