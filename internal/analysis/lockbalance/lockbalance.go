// Package lockbalance checks Lock/Unlock and RLock/RUnlock pairing along
// every control-flow path, using the lockflow may-held dataflow.
//
// Three findings:
//
//  1. A lock acquired in a function body that may still be held when the
//     function returns (an early return or panic path skipped the Unlock)
//     and is not released by a defer. The fix is almost always
//     `defer mu.Unlock()` right after the Lock.
//
//  2. A mutex acquired and released without defer in a function that can
//     panic between them is a subset of (1): panic edges flow to exit, so
//     a bare `panic(...)` between Lock and Unlock is reported as held-at-
//     exit.
//
//  3. A lock-bearing struct (transitively containing sync.Mutex, RWMutex,
//     WaitGroup, Once, or Cond) passed or received by value: the copy's
//     lock state diverges from the original's. Pointer types are fine.
//
// Functions whose contract is to return holding the lock (lock helpers)
// are expected to carry a reasoned //lint:ignore lockbalance directive.
package lockbalance

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lockflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "Lock/Unlock pairing on every CFG path; no lock-bearing structs by value\n\n" +
		"In the concurrency tiers, every sync.Mutex/RWMutex acquisition must be\n" +
		"released on every path out of the function (defer preferred), and types\n" +
		"containing locks must be passed by pointer.",
	Run: run,
}

// scopePackages mirrors the concurrency tiers the suite guards.
var scopePackages = []string{
	"internal/core", "internal/shard", "internal/gpusim", "internal/server", "internal/cache",
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.PkgPath, scopePackages...) {
		return nil
	}
	for _, f := range pass.Files {
		lockflow.Bodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkBalance(pass, body)
		})
		checkCopies(pass, f)
	}
	return nil
}

// checkBalance reports locks that may be held at function exit without a
// deferred release.
func checkBalance(pass *analysis.Pass, body *ast.BlockStmt) {
	a := lockflow.Analyze(body, pass.Info)
	held := a.HeldAtExit()
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return held[keys[i]] < held[keys[j]] })
	for _, k := range keys {
		name, isRead := strings.CutSuffix(k, lockflow.ReadSuffix)
		verb, unlock := "Lock", "Unlock"
		if isRead {
			verb, unlock = "RLock", "RUnlock"
		}
		pass.Reportf(held[k],
			"%s.%s() may be held at function exit on some path; release on every path or use defer %s.%s()",
			name, verb, name, unlock)
	}
}

// checkCopies reports function parameters, receivers, and results whose
// type is a non-pointer struct transitively containing a sync lock type.
func checkCopies(pass *analysis.Pass, f *ast.File) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if name := lockCarrier(t, nil); name != "" {
				pass.Reportf(field.Type.Pos(),
					"%s passes lock by value: %s contains %s; use a pointer",
					what, types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			check(n.Recv, "receiver")
			check(n.Type.Params, "parameter")
			check(n.Type.Results, "result")
		case *ast.FuncLit:
			check(n.Type.Params, "parameter")
			check(n.Type.Results, "result")
		}
		return true
	})
}

// lockCarrier returns the name of the sync lock type t transitively
// contains by value, or "" if none. Pointers, slices, maps, and channels
// break the chain (sharing, not copying).
func lockCarrier(t types.Type, seen map[types.Type]bool) string {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
		return lockCarrier(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockCarrier(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockCarrier(u.Elem(), seen)
	}
	return ""
}
