package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"b/internal/core",
		"b/internal/server",
		"b/internal/shard",
		"b/internal/gpusim",
	)
}
