// Package ctxflow enforces context.Context propagation through the query
// path.
//
// The deadline/cancellation machinery from PR 1 (per-query timeouts,
// admission control, graceful drain) only works if every layer hands the
// incoming context down. Three regressions are flagged in internal/core and
// internal/server:
//
//   - a function takes a context.Context but never uses it (dropped);
//   - a function with a context parameter calls context.Background() or
//     context.TODO(), detaching the work from its caller's deadline — the
//     one sanctioned shape is the nil-guard `if ctx == nil { ctx =
//     context.Background() }`;
//   - an http.Handler-shaped function (has an *http.Request parameter)
//     calls context.Background()/TODO() instead of r.Context().
//
// internal/shard is in scope too: the coordinator's per-shard attempt
// contexts must derive from the request context, or shard calls would
// outlive canceled queries and per-shard deadlines would stop capping at
// the query deadline.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid dropping or replacing an incoming context.Context on the query path\n\n" +
		"In internal/core, internal/server, internal/shard, and internal/gpusim,\n" +
		"functions that receive\n" +
		"a context must use it, must not rebase work onto context.Background()/\n" +
		"context.TODO() (except the nil-guard idiom), and request handlers must derive\n" +
		"from r.Context().",
	Run: run,
}

// internal/gpusim joined in issue 8: device submissions and collectors take
// the query context so an abort tears the stream down; dropping or rebasing
// it would leave device work running after the query died.
var scopePackages = []string{"internal/core", "internal/server", "internal/shard", "internal/gpusim"}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.PkgPath, scopePackages...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ctxParams := paramsOfType(pass, fd, isContextType)
	reqParams := paramsOfType(pass, fd, isRequestPtrType)

	for _, p := range ctxParams {
		if p.name == nil {
			pass.Reportf(p.pos, "%s drops its incoming context.Context (unnamed parameter)", fd.Name.Name)
			continue
		}
		if !identUsed(pass, fd.Body, p.obj) {
			pass.Reportf(p.pos, "%s never uses its incoming context.Context; pass it down or remove the parameter", fd.Name.Name)
		}
	}

	// A function already holding a context (or a request) must not rebase
	// onto a fresh root context.
	if len(ctxParams) == 0 && len(reqParams) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.Info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
			return true
		}
		name := callee.Name()
		if name != "Background" && name != "TODO" {
			return true
		}
		if len(ctxParams) > 0 && isNilGuardAssignment(pass, fd.Body, call, ctxParams) {
			return true
		}
		if len(ctxParams) > 0 {
			pass.Reportf(call.Pos(),
				"%s replaces its incoming context with context.%s(); derive from the parameter instead", fd.Name.Name, name)
		} else {
			pass.Reportf(call.Pos(),
				"%s has an *http.Request; use r.Context() instead of context.%s()", fd.Name.Name, name)
		}
		return true
	})
}

type param struct {
	name *ast.Ident
	obj  types.Object
	pos  token.Pos
}

// paramsOfType collects the function's parameters whose type satisfies pred.
func paramsOfType(pass *analysis.Pass, fd *ast.FuncDecl, pred func(types.Type) bool) []param {
	var out []param
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		if t == nil || !pred(t) {
			continue
		}
		if len(field.Names) == 0 {
			out = append(out, param{name: nil, pos: field.Type.Pos()})
			continue
		}
		for _, n := range field.Names {
			if n.Name == "_" {
				out = append(out, param{name: nil, pos: n.Pos()})
				continue
			}
			out = append(out, param{name: n, obj: pass.Info.Defs[n], pos: n.Pos()})
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isRequestPtrType(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// identUsed reports whether obj is referenced anywhere in body.
func identUsed(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

// isNilGuardAssignment reports whether call appears as the right-hand side
// of `ctx = context.Background()` directly inside `if ctx == nil { ... }`
// for one of the context parameters — the sanctioned defaulting idiom.
func isNilGuardAssignment(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, ctxParams []param) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			return true
		}
		guarded := guardedParam(pass, bin, ctxParams)
		if guarded == nil {
			return true
		}
		for _, stmt := range ifStmt.Body.List {
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				continue
			}
			lhs, ok := assign.Lhs[0].(*ast.Ident)
			if !ok || pass.Info.Uses[lhs] != guarded {
				continue
			}
			if ast.Unparen(assign.Rhs[0]) == call {
				found = true
			}
		}
		return true
	})
	return found
}

// guardedParam returns the context parameter compared against nil in bin.
func guardedParam(pass *analysis.Pass, bin *ast.BinaryExpr, ctxParams []param) types.Object {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var target ast.Expr
	switch {
	case isNil(bin.X):
		target = bin.Y
	case isNil(bin.Y):
		target = bin.X
	default:
		return nil
	}
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	for _, p := range ctxParams {
		if p.obj != nil && p.obj == obj {
			return obj
		}
	}
	return nil
}
