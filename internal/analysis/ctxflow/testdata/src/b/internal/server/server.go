// Package server is the ctxflow fixture for HTTP handlers.
package server

import (
	"context"
	"net/http"
)

// handleGood derives the query context from the request: no finding.
func handleGood(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	_ = ctx
}

// handleDetached rebases the query onto a root context, escaping the
// per-request deadline middleware.
func handleDetached(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "use r.Context"
	_ = ctx
	_ = r
}

// middlewareValue decorates the request context (the request-ID middleware
// pattern): deriving via WithValue from r.Context() is no finding.
func middlewareValue(w http.ResponseWriter, r *http.Request) {
	type key struct{}
	r = r.WithContext(context.WithValue(r.Context(), key{}, "id"))
	_ = r
}
