// Package core is the ctxflow fixture for engine-side entry points.
package core

import "context"

type Engine struct{}

// Query propagates its context correctly: no finding.
func (e *Engine) Query(ctx context.Context, n int) error {
	return e.step(ctx, n)
}

func (e *Engine) step(ctx context.Context, n int) error {
	return ctx.Err()
}

// Detached replaces the caller's context with a fresh root.
func (e *Engine) Detached(ctx context.Context, n int) error {
	_ = ctx.Err()
	return e.step(context.Background(), n) // want "replaces its incoming context with context.Background"
}

// Todo is the same regression spelled with TODO.
func (e *Engine) Todo(ctx context.Context, n int) error {
	_ = ctx.Err()
	return e.step(context.TODO(), n) // want "replaces its incoming context with context.TODO"
}

// Dropped never touches its context at all.
func (e *Engine) Dropped(ctx context.Context, n int) error { // want "never uses its incoming context.Context"
	return nil
}

// Blank discards the context in the signature.
func (e *Engine) Blank(_ context.Context, n int) error { // want "drops its incoming context.Context"
	return nil
}

// NilGuarded uses the sanctioned defaulting idiom: no finding.
func NilGuarded(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx.Err()
}

// Derived builds child contexts from the parameter: no finding.
func Derived(ctx context.Context) error {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	return child.Err()
}

// Vetted shows a justified suppression.
func Vetted(ctx context.Context, n int) error {
	_ = ctx.Err()
	//lint:ignore ctxflow fixture: detaching is the documented contract of this API
	bg := context.Background()
	return bg.Err()
}

// NoContext has nothing to check.
func NoContext(n int) int { return n + 1 }

// DegradeRun models the degrade-mode error-collection dispatch added with
// partial-failure tolerance: the per-object callback and the error hook
// both stay under the query context. No finding.
func DegradeRun(ctx context.Context, objs []int, fn func(int) error, onErr func(int, error) error) error {
	for _, o := range objs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fn(o); err != nil {
			if err = onErr(o, err); err != nil {
				return err
			}
		}
	}
	return nil
}

// DegradeDetachedRetry collects per-object errors but rebases the retry
// onto a fresh root, losing the query deadline mid-degrade.
func DegradeDetachedRetry(ctx context.Context, objs []int, retry func(context.Context, int) error) error {
	_ = ctx.Err()
	for _, o := range objs {
		if err := retry(context.Background(), o); err != nil { // want "replaces its incoming context with context.Background"
			return err
		}
	}
	return nil
}

// DegradeCollector drops the context entirely while merging worker errors,
// so a cancelled query would keep collecting forever.
func DegradeCollector(ctx context.Context, errs []error) []error { // want "never uses its incoming context.Context"
	out := errs[:0]
	for _, e := range errs {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}
