// Package shard is the ctxflow fixture for the sharded coordinator: every
// per-shard attempt must run under a context derived from the request
// context, or shard calls outlive canceled queries.
package shard

import (
	"context"
	"time"
)

type request struct{ shard int }

type transport interface {
	send(ctx context.Context, shard int, req *request) error
}

// scatterGood fans out under child contexts derived from the request
// context, with the sanctioned nil-guard: no finding.
func scatterGood(ctx context.Context, tr transport, reqs []*request) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for _, r := range reqs {
		if err := tr.send(ctx, r.shard, r); err != nil {
			return err
		}
	}
	return nil
}

// attemptGood derives the per-attempt deadline from the query context, so
// the query deadline still caps the attempt: no finding.
func attemptGood(ctx context.Context, tr transport, r *request, timeout time.Duration) error {
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	return tr.send(actx, r.shard, r)
}

// attemptDetached rebases the shard call onto a fresh root: the attempt
// would keep running after the query is canceled.
func attemptDetached(ctx context.Context, tr transport, r *request, timeout time.Duration) error {
	_ = ctx.Err()
	actx, cancel := context.WithTimeout(context.Background(), timeout) // want "replaces its incoming context with context.Background"
	defer cancel()
	return tr.send(actx, r.shard, r)
}

// retryDropped never consults the request context between attempts, so a
// canceled query would retry forever.
func retryDropped(ctx context.Context, tr transport, r *request, attempts int) error { // want "never uses its incoming context.Context"
	var last error
	for i := 0; i < attempts; i++ {
		if last = tr.send(context.TODO(), r.shard, r); last == nil { // want "replaces its incoming context with context.TODO"
			return nil
		}
	}
	return last
}
