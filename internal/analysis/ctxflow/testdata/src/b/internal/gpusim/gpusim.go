// Package gpusim is the ctxflow fixture for the simulated device tier,
// brought into scope by issue 8: submissions and collectors take the query
// context so an abort tears the stream down promptly.
package gpusim

import "context"

type stream struct{}

func (s *stream) submit(ctx context.Context, batch []float32) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// submitGood threads the query context through: no finding.
func submitGood(ctx context.Context, s *stream, batch []float32) error {
	return s.submit(ctx, batch)
}

// submitDropped takes the context and ignores it: the device keeps chewing
// on batches after the query died.
func submitDropped(ctx context.Context, s *stream, batch []float32) error { // want "never uses its incoming context.Context"
	return s.submit(context.TODO(), batch) // want "replaces its incoming context with context.TODO"
}

// collectRebased detaches the collector from the query deadline.
func collectRebased(ctx context.Context, s *stream) error {
	_ = ctx
	return s.submit(context.Background(), nil) // want "replaces its incoming context with context.Background"
}
