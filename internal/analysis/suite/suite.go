// Package suite registers the project's analyzers and runs them over
// loaded packages with //lint:ignore suppression applied — the shared
// engine behind cmd/3dpro-lint and the CI smoke test.
package suite

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomiccounter"
	"repro/internal/analysis/chandiscipline"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/goleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockbalance"
	"repro/internal/analysis/statsexhaustive"
	"repro/internal/analysis/wgbalance"
)

// All lists every analyzer the suite enforces, in report order: the four
// type-based checks from the original suite, then the five CFG/dataflow
// concurrency-invariant checks.
var All = []*analysis.Analyzer{
	hotalloc.Analyzer,
	ctxflow.Analyzer,
	atomiccounter.Analyzer,
	floateq.Analyzer,
	goleak.Analyzer,
	lockbalance.Analyzer,
	chandiscipline.Analyzer,
	wgbalance.Analyzer,
	statsexhaustive.Analyzer,
}

// KnownNames is the directive-validation set for //lint:ignore.
func KnownNames() map[string]bool {
	m := make(map[string]bool, len(All))
	for _, a := range All {
		m[a.Name] = true
	}
	return m
}

// Select returns the analyzers matching the pattern (all when it is
// empty). The pattern is a comma-separated list of anchored regexps —
// `goleak`, `goleak,wgbalance`, `.*balance` — and every element must match
// at least one registered analyzer: a typo like `-run goleak,lockblance`
// is an error naming the element, never a silent no-op.
func Select(pattern string) ([]*analysis.Analyzer, error) {
	if pattern == "" {
		return All, nil
	}
	selected := make(map[string]bool)
	for _, elem := range strings.Split(pattern, ",") {
		elem = strings.TrimSpace(elem)
		if elem == "" {
			return nil, fmt.Errorf("-run %q contains an empty element", pattern)
		}
		re, err := regexp.Compile("^(?:" + elem + ")$")
		if err != nil {
			return nil, fmt.Errorf("bad -run pattern %q: %v", elem, err)
		}
		matched := false
		for _, a := range All {
			if re.MatchString(a.Name) {
				selected[a.Name] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("-run %q matches no analyzer (known: %s)", elem, strings.Join(Names(), ", "))
		}
	}
	var out []*analysis.Analyzer
	for _, a := range All {
		if selected[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Names returns the registered analyzer names in report order.
func Names() []string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return names
}

// Result is the outcome of one suite run.
type Result struct {
	// Findings are unsuppressed diagnostics, including malformed
	// //lint:ignore directives. Non-empty Findings fail the build.
	Findings []analysis.Diagnostic
	// Suppressed are diagnostics covered by a //lint:ignore directive.
	Suppressed []analysis.Diagnostic
}

// Run executes the analyzers over the packages, applying suppressions.
// Directive validation always uses the full registry so a //lint:ignore for
// an analyzer excluded by -run doesn't report as unknown.
func Run(pkgs []*analysis.Package, analyzers []*analysis.Analyzer) (*Result, error) {
	res := &Result{}
	known := KnownNames()
	for _, pkg := range pkgs {
		sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files, known)
		res.Findings = append(res.Findings, sup.Malformed...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer: a,
				PkgPath:  pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			kept, suppressed := sup.Apply(pass.Diagnostics())
			res.Findings = append(res.Findings, kept...)
			res.Suppressed = append(res.Suppressed, suppressed...)
		}
	}
	return res, nil
}
