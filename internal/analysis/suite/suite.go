// Package suite registers the project's analyzers and runs them over
// loaded packages with //lint:ignore suppression applied — the shared
// engine behind cmd/3dpro-lint and the CI smoke test.
package suite

import (
	"fmt"
	"regexp"

	"repro/internal/analysis"
	"repro/internal/analysis/atomiccounter"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/hotalloc"
)

// All lists every analyzer the suite enforces, in report order.
var All = []*analysis.Analyzer{
	hotalloc.Analyzer,
	ctxflow.Analyzer,
	atomiccounter.Analyzer,
	floateq.Analyzer,
}

// KnownNames is the directive-validation set for //lint:ignore.
func KnownNames() map[string]bool {
	m := make(map[string]bool, len(All))
	for _, a := range All {
		m[a.Name] = true
	}
	return m
}

// Select returns the analyzers whose names match the regexp (all when the
// pattern is empty).
func Select(pattern string) ([]*analysis.Analyzer, error) {
	if pattern == "" {
		return All, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bad -run pattern: %v", err)
	}
	var out []*analysis.Analyzer
	for _, a := range All {
		if re.MatchString(a.Name) {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run %q matches no analyzer", pattern)
	}
	return out, nil
}

// Result is the outcome of one suite run.
type Result struct {
	// Findings are unsuppressed diagnostics, including malformed
	// //lint:ignore directives. Non-empty Findings fail the build.
	Findings []analysis.Diagnostic
	// Suppressed are diagnostics covered by a //lint:ignore directive.
	Suppressed []analysis.Diagnostic
}

// Run executes the analyzers over the packages, applying suppressions.
// Directive validation always uses the full registry so a //lint:ignore for
// an analyzer excluded by -run doesn't report as unknown.
func Run(pkgs []*analysis.Package, analyzers []*analysis.Analyzer) (*Result, error) {
	res := &Result{}
	known := KnownNames()
	for _, pkg := range pkgs {
		sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files, known)
		res.Findings = append(res.Findings, sup.Malformed...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer: a,
				PkgPath:  pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			kept, suppressed := sup.Apply(pass.Diagnostics())
			res.Findings = append(res.Findings, kept...)
			res.Suppressed = append(res.Suppressed, suppressed...)
		}
	}
	return res, nil
}
