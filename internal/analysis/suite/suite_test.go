package suite_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// moduleRoot locates the repo root so the smoke test can analyze ./... no
// matter which directory the test binary runs from.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" || gomod == "NUL" {
		t.Fatal("not running inside a module")
	}
	return filepath.Dir(gomod)
}

// TestSuiteCleanOverRepo is the CI gate: the whole repository must lint
// clean. Reintroducing a mesh.Triangles() call on the hot path, a
// context.Background() in a query entry point, a mixed atomic access, or a
// float == in the geometry packages fails this test.
func TestSuiteCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks every package; skipped in -short")
	}
	pkgs, err := analysis.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	res, err := suite.Run(pkgs, suite.All)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range res.Findings {
		t.Errorf("unsuppressed finding: %s", d)
	}
	// The vetted false positives (tritri's guarded da == db, the KNN sort
	// tie-breaks, the WKB closing-vertex test, the shutdown drain context)
	// must stay visible as suppressions, not silently vanish: if this count
	// drops to zero the directives rotted and the analyzers lost coverage.
	if len(res.Suppressed) == 0 {
		t.Error("expected vetted //lint:ignore suppressions in the tree, found none")
	}
}

func TestSelect(t *testing.T) {
	all, err := suite.Select("")
	if err != nil || len(all) != len(suite.All) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(suite.All))
	}
	one, err := suite.Select("^floateq$")
	if err != nil || len(one) != 1 || one[0].Name != "floateq" {
		t.Fatalf("Select(^floateq$) = %v, err %v", one, err)
	}
	if _, err := suite.Select("nosuchanalyzer"); err == nil {
		t.Fatal("Select(nosuchanalyzer) should fail")
	}
	if _, err := suite.Select("("); err == nil {
		t.Fatal("Select with a broken regexp should fail")
	}
	two, err := suite.Select("goleak,wgbalance")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select(goleak,wgbalance) = %v, err %v; want 2 analyzers", two, err)
	}
	// Regression (issue 8): a typo in a comma-separated -run list must be an
	// error naming the bad element, not a silent partial run.
	if _, err := suite.Select("goleak,lockblance"); err == nil {
		t.Fatal("Select(goleak,lockblance) should fail on the misspelled element")
	} else if !strings.Contains(err.Error(), "lockblance") {
		t.Fatalf("error should name the bad element, got: %v", err)
	}
	// Elements are anchored: a bare substring does not match.
	if _, err := suite.Select("balance"); err == nil {
		t.Fatal("Select(balance) should fail: names must match fully (use .*balance)")
	}
	sub, err := suite.Select(".*balance")
	if err != nil || len(sub) != 2 {
		t.Fatalf("Select(.*balance) = %v, err %v; want lockbalance+wgbalance", sub, err)
	}
	if _, err := suite.Select("goleak,,wgbalance"); err == nil {
		t.Fatal("Select with an empty element should fail")
	}
}

func TestKnownNames(t *testing.T) {
	names := suite.KnownNames()
	for _, want := range []string{
		"hotalloc", "ctxflow", "atomiccounter", "floateq",
		"goleak", "lockbalance", "chandiscipline", "wgbalance", "statsexhaustive",
	} {
		if !names[want] {
			t.Errorf("analyzer %q not registered", want)
		}
	}
	if len(names) != len(suite.All) || len(suite.Names()) != len(suite.All) {
		t.Errorf("registry size mismatch: %d known, %d names, %d registered",
			len(names), len(suite.Names()), len(suite.All))
	}
}
