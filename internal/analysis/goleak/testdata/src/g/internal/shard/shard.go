package shard

import (
	"context"
	"time"
)

type result struct{ n int }

// leakForever launches a goroutine with no exit path at all.
func leakForever(ch chan result) {
	go func() { // want "no termination path"
		for {
			select {
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// leakEmptySelect blocks forever immediately.
func leakEmptySelect() {
	go func() { // want "no termination path"
		select {}
	}()
}

// okCtxDone exits through the ctx.Done arm.
func okCtxDone(ctx context.Context, ch chan result) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			case <-ctx.Done():
				return
			}
		}
	}()
}

// okRange terminates when the owner closes the channel.
func okRange(ch chan result) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// okLabeledBreak exits via a labeled break out of the select loop.
func okLabeledBreak(ch chan result, done chan struct{}) {
	go func() {
	loop:
		for {
			select {
			case v := <-ch:
				_ = v
			case <-done:
				break loop
			}
		}
	}()
}

// leakSelectBreak: a bare break only leaves the select, not the loop.
func leakSelectBreak(done chan struct{}) {
	go func() { // want "no termination path"
		for {
			select {
			case <-done:
				break
			}
		}
	}()
}

// named goroutine bodies are resolved within the package.
func pump(ch chan result) {
	for {
		ch <- result{}
	}
}

func leakNamed(ch chan result) {
	go pump(ch) // want "no termination path"
}

// okConditionalReturn exits on every branch: one arm returns, the other
// falls through to the return after the loop via break.
func okConditionalReturn(ch chan result, stop chan struct{}) {
	go func() {
		for {
			select {
			case v, ok := <-ch:
				if !ok {
					return
				}
				_ = v
			case <-stop:
				return
			}
		}
	}()
}

// --- prober ticker loop and connection-pool reaper shapes ---

// okProberTicker mirrors the coordinator's health prober: a ticker loop
// whose stop arm returns; the ticker itself is released by the defer.
func okProberTicker(stop chan struct{}) {
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
			case <-stop:
				return
			}
		}
	}()
}

// leakProberTicker: the same loop without a stop arm never terminates.
func leakProberTicker() {
	go func() { // want "no termination path"
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
			}
		}
	}()
}

// reap is a connection-pool reaper: it sweeps idle connections on every
// tick until told to stop, so launching it is leak-free.
func reap(sweep *time.Ticker, stop chan struct{}) {
	for {
		select {
		case <-sweep.C:
		case <-stop:
			return
		}
	}
}

func okPoolReaper(stop chan struct{}) {
	go reap(time.NewTicker(time.Minute), stop)
}

// reapForever has no exit at all; launching it leaks the goroutine (and
// pins the pool it sweeps).
func reapForever(sweep *time.Ticker) {
	for {
		<-sweep.C
	}
}

func leakPoolReaper() {
	go reapForever(time.NewTicker(time.Minute)) // want "no termination path"
}
