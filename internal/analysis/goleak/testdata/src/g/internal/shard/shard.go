package shard

import "context"

type result struct{ n int }

// leakForever launches a goroutine with no exit path at all.
func leakForever(ch chan result) {
	go func() { // want "no termination path"
		for {
			select {
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// leakEmptySelect blocks forever immediately.
func leakEmptySelect() {
	go func() { // want "no termination path"
		select {}
	}()
}

// okCtxDone exits through the ctx.Done arm.
func okCtxDone(ctx context.Context, ch chan result) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			case <-ctx.Done():
				return
			}
		}
	}()
}

// okRange terminates when the owner closes the channel.
func okRange(ch chan result) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// okLabeledBreak exits via a labeled break out of the select loop.
func okLabeledBreak(ch chan result, done chan struct{}) {
	go func() {
	loop:
		for {
			select {
			case v := <-ch:
				_ = v
			case <-done:
				break loop
			}
		}
	}()
}

// leakSelectBreak: a bare break only leaves the select, not the loop.
func leakSelectBreak(done chan struct{}) {
	go func() { // want "no termination path"
		for {
			select {
			case <-done:
				break
			}
		}
	}()
}

// named goroutine bodies are resolved within the package.
func pump(ch chan result) {
	for {
		ch <- result{}
	}
}

func leakNamed(ch chan result) {
	go pump(ch) // want "no termination path"
}

// okConditionalReturn exits on every branch: one arm returns, the other
// falls through to the return after the loop via break.
func okConditionalReturn(ch chan result, stop chan struct{}) {
	go func() {
		for {
			select {
			case v, ok := <-ch:
				if !ok {
					return
				}
				_ = v
			case <-stop:
				return
			}
		}
	}()
}
