package core

import "context"

// Scoping: in internal/core only pipeline.go is checked.

type work struct{ id int }

func stageLeak(ctx context.Context, in chan work) {
	go func() { // want "no termination path"
		for {
			w := <-in
			_ = w
		}
	}()
}

func stageOK(ctx context.Context, in chan work) {
	go func() {
		for {
			select {
			case w := <-in:
				_ = w
			case <-ctx.Done():
				return
			}
		}
	}()
}
