package core

// Files other than pipeline.go in internal/core are out of goleak's scope:
// this would-be leak must produce no diagnostic.

func unscopedLeak(ch chan work) {
	go func() {
		for {
			w := <-ch
			_ = w
		}
	}()
}
