// Package goleak statically checks that every goroutine launched in the
// concurrency tiers — the pipelined executor (internal/core/pipeline.go),
// the shard coordinator (internal/shard), and the device simulator
// (internal/gpusim) — has a termination path on every CFG path.
//
// The check is reachability over the goroutine body's control-flow graph:
// a block that is reachable from entry but can never reach the function
// exit means the goroutine can get stuck forever once execution enters it.
// The CFG gives loops and selects their natural semantics, so the accepted
// exit idioms come out structurally:
//
//   - `for task := range ch { ... }` terminates when the channel is closed
//     (the range head has an exit edge);
//   - `select { case <-ctx.Done(): return ... }` arms that return or break
//     out of the loop are exit paths;
//   - `for {}` with no break/return, `select {}`, and a looping
//     single-armed select have no exit path and are flagged.
//
// Interprocedural blocking (a call that never returns) is out of scope;
// the runtime leak checker (internal/leakcheck) is the dynamic backstop.
package goleak

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "goroutines in the pipeline/shard/gpusim tiers must have a termination path on every CFG path\n\n" +
		"Every `go` statement in internal/core/pipeline.go, internal/shard, and\n" +
		"internal/gpusim must launch a body whose every reachable block can reach the\n" +
		"function exit — via return, a select arm on ctx.Done()/abort, or ranging over\n" +
		"a channel that the owner closes. A `for {}` or single-armed select loop with\n" +
		"no structural exit leaks the goroutine when the query is canceled.",
	Run: run,
}

// scopePackages are checked in full; in internal/core only pipeline.go is
// in scope (the rest of the package predates the pipelined executor and is
// covered by the runtime leak checker).
var scopePackages = []string{"internal/shard", "internal/gpusim"}

func run(pass *analysis.Pass) error {
	wholePkg := analysis.PathHasAnySuffix(pass.PkgPath, scopePackages...)
	isCore := analysis.PathHasSuffix(pass.PkgPath, "internal/core")
	if !wholePkg && !isCore {
		return nil
	}

	// Map same-package function declarations so `go name()` bodies can be
	// checked too, not just literals.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if isCore && !wholePkg {
			if filepath.Base(pass.Fset.Position(f.Pos()).Filename) != "pipeline.go" {
				continue
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				if callee := analysis.CalleeFunc(pass.Info, g.Call); callee != nil {
					if fd, ok := decls[callee]; ok {
						body = fd.Body
					}
				}
			}
			if body == nil {
				return true // dynamic callee or other-package function
			}
			graph := cfg.New(body)
			if div := graph.Diverging(); len(div) > 0 {
				pos := g.Pos()
				detail := ""
				if len(div[0].Nodes) > 0 {
					p := pass.Fset.Position(div[0].Nodes[0].Pos())
					detail = " (stuck region starts at line " + strconv.Itoa(p.Line) + ")"
				}
				pass.Reportf(pos,
					"goroutine has no termination path on some branch%s; add a select on ctx.Done(), a stream abort, or a closed-channel exit", detail)
			}
			return true
		})
	}
	return nil
}
