package goleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata", goleak.Analyzer,
		"g/internal/shard",
		"g/internal/core",
	)
}
