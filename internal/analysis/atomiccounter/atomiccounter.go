// Package atomiccounter flags mixed atomic / non-atomic access to struct
// fields.
//
// The engine's stats counters (core.Stats deltas, cache.Stats aggregation,
// the per-query collector) are touched from concurrent workers. A field
// that is updated through sync/atomic anywhere must be read and written
// through sync/atomic everywhere: one plain `s.Hits++` next to an
// `atomic.AddInt64(&s.Hits, 1)` is a data race that -race only catches when
// the schedule cooperates, and a torn read silently corrupts the Fig. 10/12
// accounting the paper's evaluation rests on.
//
// The analyzer works per package: it first collects every field that
// appears as `&x.Field` in a sync/atomic call, then flags any other plain
// read or write of those fields. Composite-literal initialization
// (`Stats{Hits: 3}`) is exempt — construction happens before the value is
// shared.
package atomiccounter

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc: "flag non-atomic access to struct fields that are elsewhere accessed via sync/atomic\n\n" +
		"A counter field updated with atomic.AddInt64/LoadInt64/... in one place must be\n" +
		"accessed atomically everywhere in the package; plain reads/writes race.",
	Run: run,
}

// fieldKey identifies a struct field across files of one package.
type fieldKey struct {
	pkg, typ, field string
}

func run(pass *analysis.Pass) error {
	atomicFields := collectAtomicFields(pass)
	if len(atomicFields) == 0 {
		return nil
	}
	// parent tracking: walk with an explicit stack so a selector can see
	// whether it sits inside an atomic call argument or a composite literal
	// key position.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key, ok := fieldOf(pass, sel)
			if !ok {
				return true
			}
			if _, tracked := atomicFields[key]; !tracked {
				return true
			}
			if inAtomicCallArg(pass, stack) || inCompositeLitKey(stack, sel) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere in this package; this plain access races — use sync/atomic here too", keyString(key))
			return true
		})
	}
	return nil
}

func keyString(k fieldKey) string { return fmt.Sprintf("%s.%s", k.typ, k.field) }

// collectAtomicFields finds fields whose address is passed to a sync/atomic
// function anywhere in the package.
func collectAtomicFields(pass *analysis.Pass) map[fieldKey]token.Pos {
	out := make(map[fieldKey]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if key, ok := fieldOf(pass, sel); ok {
					out[key] = sel.Pos()
				}
			}
			return true
		})
	}
	return out
}

func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	callee := analysis.CalleeFunc(pass.Info, call)
	return callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves a selector to (package, struct type, field) when it
// denotes a struct field access.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) (fieldKey, bool) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return fieldKey{}, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return fieldKey{}, false
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := derefNamed(t)
	if !ok {
		return fieldKey{}, false
	}
	pkgPath := ""
	if named.Obj().Pkg() != nil {
		pkgPath = named.Obj().Pkg().Path()
	}
	return fieldKey{pkg: pkgPath, typ: named.Obj().Name(), field: v.Name()}, true
}

func derefNamed(t types.Type) (*types.Named, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt, true
		default:
			return nil, false
		}
	}
}

// inAtomicCallArg reports whether the innermost enclosing call around the
// top of the stack is a sync/atomic call (the selector is the `x.F` of an
// `&x.F` argument).
func inAtomicCallArg(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok {
			return isAtomicCall(pass, call)
		}
	}
	return false
}

// inCompositeLitKey reports whether sel is the key of a KeyValueExpr — that
// cannot happen for a field selector, but sel may be the *value* inside a
// composite literal that initializes the tracked field by copy; only the
// exact `Type{Field: v}` key form is exempt, which appears as an *ast.Ident
// key, so this guards the case where the selector itself IS the
// initialization target via &struct{...} patterns.
func inCompositeLitKey(stack []ast.Node, sel *ast.SelectorExpr) bool {
	for i := len(stack) - 1; i >= 1; i-- {
		if kv, ok := stack[i].(*ast.KeyValueExpr); ok {
			if kv.Key == sel || containsNode(kv.Key, sel) {
				return true
			}
		}
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
