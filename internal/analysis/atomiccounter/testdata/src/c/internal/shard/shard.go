// Package shard is the atomiccounter fixture for the coordinator tier
// (issue 8): hedging counters are bumped from racing attempt goroutines, so
// one plain increment next to the atomic ones is a data race.
package shard

import "sync/atomic"

type hedgeStats struct {
	Launched int64
	Won      int64
	Local    int64 // never touched atomically: plain access is fine
}

func (h *hedgeStats) launch() {
	atomic.AddInt64(&h.Launched, 1)
}

func (h *hedgeStats) record(won bool) {
	if won {
		h.Won++ // want "field hedgeStats.Won is accessed with sync/atomic elsewhere"
	}
	h.Local++
}

func (h *hedgeStats) snapshot() (int64, int64) {
	atomic.AddInt64(&h.Won, 0)
	return atomic.LoadInt64(&h.Launched), h.Launched // want "field hedgeStats.Launched is accessed with sync/atomic elsewhere"
}

func newHedgeStats() *hedgeStats {
	return &hedgeStats{Launched: 0} // composite-literal init: exempt
}
