// Package gpusim is the atomiccounter fixture for the simulated device tier
// (issue 8): stream completion counters are shared between the device worker
// and the collector goroutine.
package gpusim

import "sync/atomic"

type streamStats struct {
	Completed int64
	Dropped   int64
}

func (s *streamStats) complete() {
	atomic.AddInt64(&s.Completed, 1)
}

func (s *streamStats) drain() int64 {
	n := atomic.LoadInt64(&s.Completed)
	s.Completed = 0 // want "field streamStats.Completed is accessed with sync/atomic elsewhere"
	s.Dropped = 0   // Dropped is plain everywhere: no finding
	return n
}
