// Package stats is the atomiccounter fixture: Counters.Hits is accessed
// through sync/atomic, so every other access to it must be atomic too.
// Misses is never touched atomically, so plain access is fine.
package stats

import "sync/atomic"

type Counters struct {
	Hits   int64
	Misses int64
}

// Inc is the atomic access that marks Hits as an atomic field.
func Inc(c *Counters) {
	atomic.AddInt64(&c.Hits, 1)
}

// Snapshot reads atomically: no finding.
func Snapshot(c *Counters) int64 {
	return atomic.LoadInt64(&c.Hits)
}

// Race mixes in a plain write and a plain read.
func Race(c *Counters) int64 {
	c.Hits++    // want "accessed with sync/atomic elsewhere"
	h := c.Hits // want "accessed with sync/atomic elsewhere"
	return h
}

// PlainField only ever uses plain access: no finding.
func PlainField(c *Counters) int64 {
	c.Misses++
	return c.Misses
}

// Fresh constructs a value before sharing it: composite-literal keys are
// exempt.
func Fresh() *Counters {
	return &Counters{Hits: 0, Misses: 0}
}

// Vetted reads under an external lock the analyzer can't see; the
// suppression carries the justification.
func Vetted(c *Counters) int64 {
	//lint:ignore atomiccounter fixture: caller holds the registry lock, snapshot is quiescent
	return c.Hits
}
