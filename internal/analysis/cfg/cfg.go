// Package cfg builds intraprocedural control-flow graphs over Go function
// bodies, in the spirit of golang.org/x/tools/go/cfg but — like the rest of
// the internal/analysis suite — self-contained on the standard library.
//
// A Graph is a set of basic blocks connected by successor edges. Blocks
// carry the statements and load-bearing expressions (loop conditions, range
// clauses, select comm statements) in execution order, so a dataflow client
// can replay a block's effects node by node. The builder models:
//
//   - if/else with init statements;
//   - for loops (cond/post), including `for {}` with no exit edge;
//   - range loops, whose structural exit edge models "the ranged-over
//     channel was closed / the sequence ended";
//   - switch, type switch (implicit default → fallthrough edge to done),
//     and fallthrough between cases;
//   - select, one successor per comm clause (an empty `select {}` or a
//     default-less select whose cases all loop back therefore shows up as
//     code that cannot reach the exit);
//   - break/continue (labeled and not), goto, labeled statements;
//   - return and calls to the panic builtin, both of which edge to the
//     synthetic Exit block (deferred calls run on those paths, which is why
//     the graph records DeferStmts separately in source order);
//   - go and defer statements as ordinary nodes (a goroutine body is a
//     separate function; build its own Graph to analyze it).
//
// Nested function literals are opaque: their bodies are NOT inlined into
// the enclosing graph (a literal's control flow is its own function's).
// Clients analyzing a FuncLit build a Graph from its body.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block: a maximal straight-line sequence of nodes with
// edges only at the end.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Kind names the construct that created the block ("entry", "if.then",
	// "for.head", "select.case", ...) for debugging and tests.
	Kind string
	// Nodes are the statements/expressions executed in this block, in
	// order. The synthetic exit block has none.
	Nodes []ast.Node
	// Succs are the possible successors.
	Succs []*Block
	// Preds are the predecessors (filled in by New after building).
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is the synthetic sink: every return, panic, and fall-off-the-end
	// path edges into it. Code that cannot reach Exit can never terminate
	// the function normally.
	Exit   *Block
	Blocks []*Block
	// Defers lists the defer statements encountered anywhere in the body,
	// in source order. Deferred calls run on every path through Exit that
	// executes them; clients approximating defer semantics usually treat
	// them as running at Exit.
	Defers []*ast.DeferStmt
}

// New builds the CFG of body. body may be any statement list owner (in
// practice a function or literal body); a nil body yields a graph with only
// entry and exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*labelInfo),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit)
	// Resolve gotos to labels that were never declared (broken code or a
	// label on a later path the builder missed): conservatively edge them
	// to exit so clients never see a dangling reference.
	for _, li := range b.labels {
		if !li.placed {
			for _, src := range li.pending {
				addEdge(src, b.g.Exit)
			}
		}
	}
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label     string
	breakB    *Block // break destination
	continueB *Block // continue destination; nil for switch/select
}

type labelInfo struct {
	block   *Block
	placed  bool
	pending []*Block // blocks with a goto to the label before it was placed
}

type builder struct {
	g       *Graph
	cur     *Block
	targets []target
	labels  map[string]*labelInfo
	// pendingLabel is the label of a LabeledStmt whose inner statement is
	// about to be built (so `continue L` can find L's loop).
	pendingLabel string
	// fallTarget is the next case body during switch construction.
	fallTarget *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to dst and makes dst current.
func (b *builder) jump(dst *Block) {
	addEdge(b.cur, dst)
	b.cur = dst
}

// startUnreachable begins a fresh block with no predecessors, for code
// following a return/branch. It stays in Graph.Blocks so its nodes remain
// inspectable, but reachability naturally ignores it.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		b.jump(li.block)
		li.placed = true
		for _, src := range li.pending {
			addEdge(src, li.block)
		}
		li.pending = nil
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
		b.startUnreachable()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
			b.startUnreachable()
		}
	default:
		// Assign, Decl, IncDec, Send, Go, ...: straight-line nodes.
		b.add(s)
	}
}

// isPanicCall reports whether e is a call of an identifier named panic.
// The cfg package has no type information, so a shadowed `panic` function
// is (harmlessly, conservatively) treated as terminating too.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) labelFor(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{block: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.jump(t.breakB)
				b.startUnreachable()
				return
			}
		}
	case "continue":
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueB != nil && (label == "" || t.label == label) {
				b.jump(t.continueB)
				b.startUnreachable()
				return
			}
		}
	case "goto":
		li := b.labelFor(label)
		if li.placed {
			b.jump(li.block)
		} else {
			li.pending = append(li.pending, b.cur)
		}
		b.startUnreachable()
		return
	case "fallthrough":
		if b.fallTarget != nil {
			b.jump(b.fallTarget)
			b.startUnreachable()
			return
		}
	}
	// Unmatched break/continue (broken code): fall off to exit so the
	// graph stays connected.
	b.jump(b.g.Exit)
	b.startUnreachable()
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	addEdge(head, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(done)
	if s.Else != nil {
		els := b.newBlock("if.else")
		addEdge(head, els)
		b.cur = els
		b.stmt(s.Else)
		b.jump(done)
	} else {
		addEdge(head, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.jump(head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	addEdge(head, body)
	if s.Cond != nil {
		addEdge(head, done) // `for {}` has no structural exit edge
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		addEdge(post, head)
		cont = post
	}
	b.targets = append(b.targets, target{label: label, breakB: done, continueB: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(cont)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	b.jump(head)
	// The RangeStmt itself is the head's node, so clients can see what is
	// being ranged over (a channel receive, a slice walk, ...).
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	addEdge(head, body)
	addEdge(head, done)
	b.targets = append(b.targets, target{label: label, breakB: done, continueB: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body, label, true)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body, label, false)
}

// caseClauses builds the shared switch/type-switch shape: head → every case
// body, implicit default → done, optional fallthrough chaining.
func (b *builder) caseClauses(body *ast.BlockStmt, label string, allowFallthrough bool) {
	head := b.cur
	done := b.newBlock("switch.done")
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "case"
		if cc.List == nil {
			kind = "default"
			hasDefault = true
		}
		blocks[i] = b.newBlock("switch." + kind)
		addEdge(head, blocks[i])
	}
	if !hasDefault {
		addEdge(head, done)
	}
	b.targets = append(b.targets, target{label: label, breakB: done})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if allowFallthrough && i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.stmtList(cc.Body)
		b.fallTarget = nil
		b.jump(done)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	done := b.newBlock("select.done")
	b.targets = append(b.targets, target{label: label, breakB: done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		addEdge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			// The comm statement (send or receive) executes first in its
			// case block.
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	b.targets = b.targets[:len(b.targets)-1]
	// An empty `select {}` blocks forever: head gets no case successor and
	// done keeps no predecessor, so following code is unreachable — exactly
	// the semantics.
	b.cur = done
}

// ReachableFromEntry returns the set of blocks reachable from Entry.
func (g *Graph) ReachableFromEntry() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// CanReachExit returns the set of blocks from which Exit is reachable
// (computed over predecessor edges from Exit).
func (g *Graph) CanReachExit() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range b.Preds {
			walk(p)
		}
	}
	walk(g.Exit)
	return seen
}

// Diverging returns the blocks that are reachable from Entry but can never
// reach Exit — code stuck in a loop (or blocked select) with no way out.
// The result preserves block order.
func (g *Graph) Diverging() []*Block {
	reach := g.ReachableFromEntry()
	exits := g.CanReachExit()
	var out []*Block
	for _, b := range g.Blocks {
		if reach[b] && !exits[b] {
			out = append(out, b)
		}
	}
	return out
}

// Debug renders the graph as one line per block, for tests.
func (g *Graph) Debug() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%s ->", b)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %s", s)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
