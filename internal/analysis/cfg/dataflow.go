package cfg

// Forward runs a forward dataflow fixpoint over g. entry is the fact at the
// function entry; transfer applies one block's effects to an incoming fact
// and returns the outgoing fact (it must not mutate its argument); join
// merges facts at control-flow merges; equal detects convergence.
//
// The returned map holds each reachable block's IN fact (the join of its
// predecessors' OUT facts; the entry block's IN is entry). Unreachable
// blocks are absent.
//
// Whether the analysis is "may" (union join) or "must" (intersection join)
// is entirely the client's choice of join. Termination requires the usual
// lattice conditions: join monotone with transfer, finite fact height.
func Forward[F any](g *Graph, entry F, transfer func(*Block, F) F, join func(F, F) F, equal func(F, F) bool) map[*Block]F {
	in := make(map[*Block]F)
	in[g.Entry] = entry
	out := make(map[*Block]F)
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		o := transfer(b, in[b])
		if prev, ok := out[b]; ok && equal(prev, o) {
			continue
		}
		out[b] = o
		for _, s := range b.Succs {
			next := o
			if cur, ok := in[s]; ok {
				next = join(cur, o)
				if equal(cur, next) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Out recomputes a block's OUT fact from a Forward result, for clients that
// need facts after a block rather than before it.
func Out[F any](in map[*Block]F, b *Block, transfer func(*Block, F) F) (F, bool) {
	f, ok := in[b]
	if !ok {
		var zero F
		return zero, false
	}
	return transfer(b, f), true
}
