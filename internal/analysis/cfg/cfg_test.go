package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a function and returns its Graph.
// src is the statement list, without braces.
func build(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, file)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// diverges reports whether the graph has entry-reachable blocks that cannot
// reach exit.
func diverges(g *Graph) bool { return len(g.Diverging()) > 0 }

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if diverges(g) {
		t.Fatalf("straight-line code should reach exit:\n%s", g.Debug())
	}
	if !g.ReachableFromEntry()[g.Exit] {
		t.Fatalf("exit not reachable:\n%s", g.Debug())
	}
}

func TestIfElseBothReach(t *testing.T) {
	g := build(t, "if cond() {\n a()\n} else {\n b()\n}\nc()")
	if diverges(g) {
		t.Fatalf("if/else should reach exit:\n%s", g.Debug())
	}
}

func TestReturnMakesFollowingUnreachable(t *testing.T) {
	g := build(t, "return\nafter()")
	reach := g.ReachableFromEntry()
	var afterBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
						afterBlock = b
					}
				}
			}
		}
	}
	if afterBlock == nil {
		t.Fatalf("after() block not found:\n%s", g.Debug())
	}
	if reach[afterBlock] {
		t.Fatalf("code after return should be unreachable:\n%s", g.Debug())
	}
}

func TestPanicEdgesToExit(t *testing.T) {
	g := build(t, "if bad() {\n panic(\"x\")\n}\nok()")
	if diverges(g) {
		t.Fatalf("panic path should edge to exit:\n%s", g.Debug())
	}
}

func TestForeverLoopDiverges(t *testing.T) {
	g := build(t, "for {\n work()\n}")
	if !diverges(g) {
		t.Fatalf("for{} without break should diverge:\n%s", g.Debug())
	}
}

func TestForeverLoopWithBreakReaches(t *testing.T) {
	g := build(t, "for {\n if done() {\n  break\n }\n work()\n}")
	if diverges(g) {
		t.Fatalf("for{} with break should reach exit:\n%s", g.Debug())
	}
}

func TestForeverLoopWithReturnReaches(t *testing.T) {
	g := build(t, "for {\n if done() {\n  return\n }\n}")
	if diverges(g) {
		t.Fatalf("for{} with return should reach exit:\n%s", g.Debug())
	}
}

func TestCondLoopReaches(t *testing.T) {
	g := build(t, "for i := 0; i < n; i++ {\n work(i)\n}\nafter()")
	if diverges(g) {
		t.Fatalf("conditional for should reach exit:\n%s", g.Debug())
	}
}

func TestRangeLoopHasExitEdge(t *testing.T) {
	// Ranging over a channel terminates when the channel closes; the head's
	// structural exit edge models that.
	g := build(t, "for v := range ch {\n use(v)\n}")
	if diverges(g) {
		t.Fatalf("range loop should have an exit edge:\n%s", g.Debug())
	}
}

func TestEmptySelectDiverges(t *testing.T) {
	g := build(t, "select {}")
	if !diverges(g) {
		t.Fatalf("select{} should diverge:\n%s", g.Debug())
	}
}

func TestSelectLoopWithoutExitDiverges(t *testing.T) {
	// A single-armed select in an infinite loop: the arm loops back, so
	// nothing reaches exit.
	g := build(t, "for {\n select {\n case v := <-ch:\n  use(v)\n }\n}")
	if !diverges(g) {
		t.Fatalf("looping single-armed select should diverge:\n%s", g.Debug())
	}
}

func TestSelectWithReturnArmReaches(t *testing.T) {
	g := build(t, "for {\n select {\n case v := <-ch:\n  use(v)\n case <-ctx.Done():\n  return\n }\n}")
	if diverges(g) {
		t.Fatalf("select with return arm should reach exit:\n%s", g.Debug())
	}
}

func TestSelectBreakLeavesSelectNotLoop(t *testing.T) {
	// break inside a select arm exits the select, not the loop — still no
	// path out of the for{}.
	g := build(t, "for {\n select {\n case <-ch:\n  break\n }\n}")
	if !diverges(g) {
		t.Fatalf("break in select arm should not exit the loop:\n%s", g.Debug())
	}
}

func TestLabeledBreakExitsLoop(t *testing.T) {
	g := build(t, "loop:\nfor {\n select {\n case <-ch:\n  break loop\n }\n}\nafter()")
	if diverges(g) {
		t.Fatalf("labeled break should exit the loop:\n%s", g.Debug())
	}
}

func TestLabeledContinue(t *testing.T) {
	g := build(t, "outer:\nfor i := 0; i < n; i++ {\n for {\n  continue outer\n }\n}")
	if diverges(g) {
		t.Fatalf("labeled continue targets the outer loop (which has a cond exit):\n%s", g.Debug())
	}
}

func TestSwitchImplicitDefault(t *testing.T) {
	g := build(t, "switch x {\ncase 1:\n a()\ncase 2:\n b()\n}\nafter()")
	if diverges(g) {
		t.Fatalf("switch without default falls through to done:\n%s", g.Debug())
	}
}

func TestSwitchAllCasesReturnWithDefault(t *testing.T) {
	g := build(t, "switch x {\ncase 1:\n return\ndefault:\n return\n}\nafter()")
	reach := g.ReachableFromEntry()
	// after() must be unreachable: every case returns and there is a default.
	found := false
	for _, b := range g.Blocks {
		if reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(n), "after") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("after() should be unreachable:\n%s", g.Debug())
	}
}

func TestFallthrough(t *testing.T) {
	g := build(t, "switch x {\ncase 1:\n a()\n fallthrough\ncase 2:\n b()\n}")
	if diverges(g) {
		t.Fatalf("fallthrough chain should reach exit:\n%s", g.Debug())
	}
	// The case-1 block must have an edge to the case-2 block.
	var c1, c2 *Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			if c1 == nil {
				c1 = b
			} else {
				c2 = b
			}
		}
	}
	if c1 == nil || c2 == nil {
		t.Fatalf("expected two case blocks:\n%s", g.Debug())
	}
	ok := false
	for _, s := range c1.Succs {
		if s == c2 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("fallthrough edge missing:\n%s", g.Debug())
	}
}

func TestTypeSwitch(t *testing.T) {
	g := build(t, "switch v := x.(type) {\ncase int:\n use(v)\ncase string:\n use(v)\n}\nafter()")
	if diverges(g) {
		t.Fatalf("type switch should reach exit:\n%s", g.Debug())
	}
}

func TestGotoBackwardMakesLoop(t *testing.T) {
	g := build(t, "top:\nwork()\ngoto top")
	if !diverges(g) {
		t.Fatalf("goto loop without exit should diverge:\n%s", g.Debug())
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, "if skip() {\n goto done\n}\nwork()\ndone:\nafter()")
	if diverges(g) {
		t.Fatalf("forward goto should reach exit:\n%s", g.Debug())
	}
}

func TestDefersRecorded(t *testing.T) {
	g := build(t, "defer mu.Unlock()\nif x {\n defer f()\n}\nreturn")
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers, got %d:\n%s", len(g.Defers), g.Debug())
	}
}

func TestNestedFuncLitNotInlined(t *testing.T) {
	// The literal's infinite loop must not make the enclosing function
	// diverge.
	g := build(t, "go func() {\n for {\n }\n}()\nafter()")
	if diverges(g) {
		t.Fatalf("nested FuncLit control flow must be opaque:\n%s", g.Debug())
	}
}

func TestForwardMustAnalysis(t *testing.T) {
	// Facts: set of "done" flags set on all paths. Must-analysis via
	// intersection join: a flag survives only if every path sets it.
	g := build(t, "if c {\n a()\n} else {\n a()\n b()\n}\nend()")
	type fact = map[string]bool
	transfer := func(b *Block, in fact) fact {
		out := make(fact, len(in)+1)
		for k := range in {
			out[k] = true
		}
		for _, n := range b.Nodes {
			txt := nodeText(n)
			for _, name := range []string{"a()", "b()"} {
				if strings.Contains(txt, name) {
					out[name] = true
				}
			}
		}
		return out
	}
	join := func(x, y fact) fact {
		out := make(fact)
		for k := range x {
			if y[k] {
				out[k] = true
			}
		}
		return out
	}
	equal := func(x, y fact) bool {
		if len(x) != len(y) {
			return false
		}
		for k := range x {
			if !y[k] {
				return false
			}
		}
		return true
	}
	in := Forward(g, fact{}, transfer, join, equal)
	exitIn, ok := in[g.Exit]
	if !ok {
		t.Fatalf("no fact at exit:\n%s", g.Debug())
	}
	if !exitIn["a()"] {
		t.Errorf("a() is called on every path; must-fact lost: %v", exitIn)
	}
	if exitIn["b()"] {
		t.Errorf("b() is only on one path; must-fact should not survive: %v", exitIn)
	}
}

func TestForwardLoopConverges(t *testing.T) {
	// A counter-free may-analysis over a loop must terminate and propagate
	// facts around the back edge.
	g := build(t, "x()\nfor i := 0; i < n; i++ {\n y()\n}\nz()")
	type fact = map[string]bool
	transfer := func(b *Block, in fact) fact {
		out := make(fact, len(in)+1)
		for k := range in {
			out[k] = true
		}
		for _, n := range b.Nodes {
			txt := nodeText(n)
			for _, name := range []string{"x()", "y()", "z()"} {
				if strings.Contains(txt, name) {
					out[name] = true
				}
			}
		}
		return out
	}
	join := func(x, y fact) fact {
		out := make(fact)
		for k := range x {
			out[k] = true
		}
		for k := range y {
			out[k] = true
		}
		return out
	}
	equal := func(x, y fact) bool {
		if len(x) != len(y) {
			return false
		}
		for k := range x {
			if !y[k] {
				return false
			}
		}
		return true
	}
	in := Forward(g, fact{}, transfer, join, equal)
	exitIn := in[g.Exit]
	for _, want := range []string{"x()", "z()"} {
		if !exitIn[want] {
			t.Errorf("%s should reach exit, got %v", want, exitIn)
		}
	}
	if !exitIn["y()"] {
		t.Errorf("loop body fact should flow out via may-join, got %v", exitIn)
	}
}

func nodeText(n ast.Node) string {
	// Cheap textual rendering good enough for tests: walk idents and
	// reconstruct call-ish text.
	var sb strings.Builder
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			sb.WriteString(id.Name)
			sb.WriteString("()")
		}
		return true
	})
	return sb.String()
}
