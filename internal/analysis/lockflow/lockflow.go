// Package lockflow is the shared lock-tracking dataflow used by the
// lockbalance and wgbalance analyzers. It runs a may-analysis ("which locks
// might be held here?") over a function body's CFG.
//
// Locks are identified by the source text of the receiver expression
// (types.ExprString), so `s.mu.Lock()` and `s.mu.Unlock()` pair up while
// `a.mu` and `b.mu` stay distinct. Read locks get a "#r" key suffix so an
// RLock/Unlock mismatch doesn't cancel out. This textual keying is the
// usual engineering compromise: it cannot prove aliasing, but within one
// function body receiver text is a faithful identity in practice.
//
// sync.Mutex.TryLock / sync.RWMutex.TryLock / TryRLock are ignored: their
// acquisition is branch-dependent and tracking them without path
// sensitivity would only manufacture false positives.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// ReadSuffix marks read-lock keys ("s.mu" held via RLock is "s.mu#r").
const ReadSuffix = "#r"

// Fact maps a lock key to the position of the acquiring Lock/RLock call.
// It is a may-set: a key present means the lock might be held.
type Fact map[string]token.Pos

func (f Fact) clone() Fact {
	out := make(Fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Analysis is the result of running lock tracking over one function body.
type Analysis struct {
	Graph *cfg.Graph
	// In holds each reachable block's entry fact.
	In map[*cfg.Block]Fact
	// Deferred is the set of lock keys released by defer statements
	// anywhere in the body (conservatively assumed to run at every exit).
	Deferred map[string]bool

	info *types.Info
}

// Analyze builds the CFG of body and runs the may-held fixpoint.
func Analyze(body *ast.BlockStmt, info *types.Info) *Analysis {
	g := cfg.New(body)
	a := &Analysis{
		Graph:    g,
		Deferred: make(map[string]bool),
		info:     info,
	}
	for _, d := range g.Defers {
		if key, locked, ok := a.lockOp(d.Call); ok && !locked {
			a.Deferred[key] = true
		}
	}
	a.In = cfg.Forward(g, Fact{},
		func(b *cfg.Block, in Fact) Fact { return a.transferBlock(b, in) },
		joinFacts, equalFacts)
	return a
}

func joinFacts(x, y Fact) Fact {
	out := x.clone()
	for k, v := range y {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func equalFacts(x, y Fact) bool {
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if _, ok := y[k]; !ok {
			return false
		}
	}
	return true
}

func (a *Analysis) transferBlock(b *cfg.Block, in Fact) Fact {
	out := in.clone()
	for _, n := range b.Nodes {
		a.transferNode(n, out)
	}
	return out
}

// transferNode applies one node's lock effects to f in place. Function
// literals are opaque (their bodies run later, if at all) and deferred
// calls are modeled at exit, not here.
func (a *Analysis) transferNode(n ast.Node, f Fact) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if key, locked, ok := a.lockOp(m); ok {
				if locked {
					if _, held := f[key]; !held {
						f[key] = m.Pos()
					}
				} else {
					delete(f, key)
				}
			}
		}
		return true
	})
}

// lockOp classifies call as a lock acquisition or release on a
// sync.Mutex/sync.RWMutex receiver, returning the lock key and whether the
// operation acquires (true) or releases (false).
func (a *Analysis) lockOp(call *ast.CallExpr) (key string, locked, ok bool) {
	callee := analysis.CalleeFunc(a.info, call)
	if callee == nil {
		return "", false, false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", false, false
	}
	recv := types.ExprString(sel.X)
	switch {
	case analysis.IsMethodOn(callee, "sync", "Mutex", "Lock"),
		analysis.IsMethodOn(callee, "sync", "RWMutex", "Lock"):
		return recv, true, true
	case analysis.IsMethodOn(callee, "sync", "Mutex", "Unlock"),
		analysis.IsMethodOn(callee, "sync", "RWMutex", "Unlock"):
		return recv, false, true
	case analysis.IsMethodOn(callee, "sync", "RWMutex", "RLock"):
		return recv + ReadSuffix, true, true
	case analysis.IsMethodOn(callee, "sync", "RWMutex", "RUnlock"):
		return recv + ReadSuffix, false, true
	}
	return "", false, false
}

// HeldAtExit returns the locks that may still be held when the function
// returns (or panics), excluding keys released by a defer.
func (a *Analysis) HeldAtExit() Fact {
	in, ok := a.In[a.Graph.Exit]
	if !ok {
		return Fact{}
	}
	out := make(Fact)
	for k, pos := range in {
		if !a.Deferred[k] {
			out[k] = pos
		}
	}
	return out
}

// WalkNodes replays the analysis over every reachable block, calling fn for
// each node with the may-held set in effect immediately BEFORE the node's
// own lock operations apply. The Fact passed to fn is reused between calls;
// clone it to retain.
func (a *Analysis) WalkNodes(fn func(n ast.Node, held Fact)) {
	for _, b := range a.Graph.Blocks {
		in, ok := a.In[b]
		if !ok {
			continue // unreachable
		}
		cur := in.clone()
		for _, n := range b.Nodes {
			fn(n, cur)
			a.transferNode(n, cur)
		}
	}
}

// Bodies yields every function body in file in source order — declarations
// and function literals alike — so analyzers can run per-body dataflow
// uniformly. The enclosing FuncDecl is nil for literals not inside one
// (package-level var initializers).
func Bodies(file *ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	var curDecl *ast.FuncDecl
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			curDecl = n
			if n.Body != nil {
				fn(n, nil, n.Body)
			}
			ast.Inspect(n, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok {
					fn(n, lit, lit.Body)
				}
				return true
			})
			curDecl = nil
			return false
		case *ast.FuncLit:
			fn(curDecl, n, n.Body)
			return false
		}
		return true
	}
	ast.Inspect(file, walk)
}
