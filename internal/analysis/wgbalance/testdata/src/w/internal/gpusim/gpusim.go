package gpusim

import "sync"

type device struct {
	mu      sync.Mutex
	wg      sync.WaitGroup
	workers int
}

// addInsideGoroutine is the classic race: Wait may pass before Add runs.
func (d *device) addInsideGoroutine() {
	go func() {
		d.wg.Add(1) // want "Add inside the spawned goroutine"
		defer d.wg.Done()
	}()
	d.wg.Wait()
}

// okAddBeforeGo is the correct shape.
func (d *device) okAddBeforeGo() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
	}()
	d.wg.Wait()
}

// okInnerGroup: a WaitGroup created inside the goroutine is a new group;
// Add on it is fine.
func (d *device) okInnerGroup() {
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			inner.Done()
		}()
		inner.Wait()
	}()
}

// doneNotOnAllPaths under-counts when work fails.
func (d *device) doneNotOnAllPaths(work func() error) {
	d.wg.Add(1)
	go func() {
		if err := work(); err != nil {
			return
		}
		d.wg.Done() // want "not called on every path"
	}()
}

// okDeferDone covers every path including panics.
func (d *device) okDeferDone(work func() error) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		if err := work(); err != nil {
			return
		}
	}()
}

// okDoneBothBranches calls Done explicitly on each path.
func (d *device) okDoneBothBranches(work func() error) {
	d.wg.Add(1)
	go func() {
		if err := work(); err != nil {
			d.wg.Done()
			return
		}
		d.wg.Done()
	}()
}

// waitWhileLocked deadlocks if a worker needs d.mu.
func (d *device) waitWhileLocked() {
	d.mu.Lock()
	d.wg.Wait() // want "while holding d.mu"
	d.mu.Unlock()
}

// okWaitAfterUnlock releases first.
func (d *device) okWaitAfterUnlock() {
	d.mu.Lock()
	d.workers++
	d.mu.Unlock()
	d.wg.Wait()
}
