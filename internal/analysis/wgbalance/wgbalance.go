// Package wgbalance checks sync.WaitGroup usage along every control-flow
// path:
//
//  1. Add inside the spawned goroutine: `go func() { wg.Add(1); ... }()`
//     races with Wait — the counter may still be zero when Wait runs. Add
//     must happen before the `go` statement. A WaitGroup declared inside
//     the goroutine body itself is exempt (it is a new, inner group).
//
//  2. Done not on every path: a goroutine body that calls wg.Done()
//     conditionally (and not via defer) under-counts on the paths that
//     skip it, and Wait hangs. Must-analysis over the CFG: Done has to
//     appear on all paths to exit, or be deferred.
//
//  3. Wait while holding a lock: wg.Wait() with a sync.Mutex/RWMutex held
//     (per the lockflow may-analysis) deadlocks if any waited-on goroutine
//     needs the same lock to finish.
package wgbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/lockflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "wgbalance",
	Doc: "WaitGroup Add/Done/Wait discipline on every CFG path\n\n" +
		"Add before the goroutine (never inside it), Done on every path (defer\n" +
		"preferred), and no Wait while holding a lock the workers might need.",
	Run: run,
}

var scopePackages = []string{
	"internal/core", "internal/shard", "internal/gpusim", "internal/server", "internal/cache",
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.PkgPath, scopePackages...) {
		return nil
	}
	for _, f := range pass.Files {
		checkAddInGoroutine(pass, f)
		lockflow.Bodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkDoneOnAllPaths(pass, body)
			checkWaitWhileLocked(pass, body)
		})
	}
	return nil
}

// wgMethod classifies call as a sync.WaitGroup method call, returning the
// receiver key and method name.
func wgMethod(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	callee := analysis.CalleeFunc(info, call)
	if callee == nil {
		return "", "", false
	}
	for _, m := range []string{"Add", "Done", "Wait"} {
		if analysis.IsMethodOn(callee, "sync", "WaitGroup", m) {
			sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !selOK {
				return "", "", false
			}
			return types.ExprString(sel.X), m, true
		}
	}
	return "", "", false
}

// checkAddInGoroutine flags wg.Add calls lexically inside a `go func()`
// literal, unless the WaitGroup is declared inside that literal.
func checkAddInGoroutine(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, method, ok := wgMethod(pass.Info, call); !ok || method != "Add" {
				return true
			}
			if declaredWithin(pass.Info, call, lit) {
				return true
			}
			pass.Reportf(call.Pos(),
				"WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
			return true
		})
		return true
	})
}

// declaredWithin reports whether the base object of the call's receiver
// chain is declared inside lit (an inner WaitGroup owned by the goroutine).
func declaredWithin(info *types.Info, call *ast.CallExpr, lit *ast.FuncLit) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base := ast.Unparen(sel.X)
	for {
		if s, ok := base.(*ast.SelectorExpr); ok {
			base = ast.Unparen(s.X)
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
}

// checkDoneOnAllPaths runs a must-analysis: every path from entry to exit
// must execute wg.Done() (or a defer covers it) for each WaitGroup that
// has any non-deferred Done call in the body.
func checkDoneOnAllPaths(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)

	deferredDone := make(map[string]bool)
	for _, d := range g.Defers {
		if key, method, ok := wgMethod(pass.Info, d.Call); ok && method == "Done" {
			deferredDone[key] = true
		}
	}

	// Collect the WaitGroup keys with plain Done calls and their first
	// call position for reporting.
	firstDone := make(map[string]token.Pos)
	collect := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if key, method, ok := wgMethod(pass.Info, m); ok && method == "Done" {
					if cur, seen := firstDone[key]; !seen || m.Pos() < cur {
						firstDone[key] = m.Pos()
					}
				}
			}
			return true
		})
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			collect(n)
		}
	}
	if len(firstDone) == 0 {
		return
	}

	// Must-Done facts: nil means "unvisited top" so joins at merge points
	// don't wipe facts before both predecessors are seen; cfg.Forward only
	// joins computed OUT facts, so a plain set works.
	type fact = map[string]bool
	transfer := func(b *cfg.Block, in fact) fact {
		out := make(fact, len(in))
		for k := range in {
			out[k] = true
		}
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					if key, method, ok := wgMethod(pass.Info, m); ok && method == "Done" {
						out[key] = true
					}
				}
				return true
			})
		}
		return out
	}
	join := func(x, y fact) fact {
		out := make(fact)
		for k := range x {
			if y[k] {
				out[k] = true
			}
		}
		return out
	}
	equal := func(x, y fact) bool {
		if len(x) != len(y) {
			return false
		}
		for k := range x {
			if !y[k] {
				return false
			}
		}
		return true
	}
	in := cfg.Forward(g, fact{}, transfer, join, equal)
	atExit, ok := in[g.Exit]
	if !ok {
		return // exit unreachable; goleak's department
	}

	keys := make([]string, 0, len(firstDone))
	for k := range firstDone {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if deferredDone[k] || atExit[k] {
			continue
		}
		pass.Reportf(firstDone[k],
			"%s.Done() is not called on every path to return; use defer %s.Done() at the top", k, k)
	}
}

// checkWaitWhileLocked reports wg.Wait() calls at which the lockflow
// may-held set is non-empty.
func checkWaitWhileLocked(pass *analysis.Pass, body *ast.BlockStmt) {
	a := lockflow.Analyze(body, pass.Info)
	a.WalkNodes(func(n ast.Node, held lockflow.Fact) {
		if len(held) == 0 {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if key, method, ok := wgMethod(pass.Info, m); ok && method == "Wait" {
					locks := make([]string, 0, len(held))
					for l := range held {
						locks = append(locks, strings.TrimSuffix(l, lockflow.ReadSuffix))
					}
					sort.Strings(locks)
					pass.Reportf(m.Pos(),
						"%s.Wait() while holding %s; a worker needing the lock deadlocks — release before waiting",
						key, strings.Join(locks, ", "))
				}
			}
			return true
		})
	})
}
