package wgbalance_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wgbalance"
)

func TestWgBalance(t *testing.T) {
	analysistest.Run(t, "testdata", wgbalance.Analyzer,
		"w/internal/gpusim",
	)
}
