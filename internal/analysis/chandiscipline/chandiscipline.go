// Package chandiscipline enforces the channel ownership and cancellation
// conventions of the shard and pipeline tiers:
//
//  1. Blocking send in a cancelable path: inside a function that takes a
//     context.Context, a bare `ch <- v` (not a select arm, and not to a
//     locally made constant-capacity result channel) can block past
//     cancellation. Wrap it in a select with a ctx.Done()/abort arm.
//     The constant-capacity exemption sanctions the result-channel idiom:
//     `ch := make(chan result, 2)` sized to the number of sends can never
//     block, so selecting around it would be noise.
//
//  2. Close from non-owner: `close(ch)` where ch is a function parameter.
//     The owner — the function that made the channel, or its method set —
//     closes; a callee closing a channel it was handed invites
//     double-close panics.
//
//  3. Receive loop from a never-closed channel: `for v := range ch` where
//     ch is a package-local channel (unexported field or local variable)
//     that no code in the package ever closes or hands out, and the loop
//     body has no break/return/goto. The loop can never exit; the
//     goroutine running it leaks.
package chandiscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "chandiscipline",
	Doc: "channel ownership and cancellation discipline in the concurrency tiers\n\n" +
		"Sends in context-taking functions must be select-wrapped (or go to a locally\n" +
		"made constant-capacity channel); only a channel's owner closes it (never a\n" +
		"callee that received it as a parameter); a range over a package-local channel\n" +
		"that nothing closes and that has no break/return is a guaranteed leak.",
	Run: run,
}

var scopePackages = []string{
	"internal/core", "internal/shard", "internal/gpusim", "internal/server",
}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.PkgPath, scopePackages...) {
		return nil
	}
	facts := collectChannelFacts(pass)
	for _, f := range pass.Files {
		checkFile(pass, f, facts)
	}
	return nil
}

// pkgFacts is what the whole-package pre-scan learned about channels.
type pkgFacts struct {
	closed  map[types.Object]bool // some code in the package closes it
	escaped map[types.Object]bool // aliased/passed out of local reasoning
	params  map[types.Object]bool // declared as a function parameter
}

// chanObj resolves e to the types.Object identifying a channel: a plain
// identifier's object, or a selector's field object. Returns nil for
// anything more complex (map index, call result, ...).
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// collectChannelFacts walks the whole package recording, per channel
// object: whether any code closes it, whether it "escapes" local
// reasoning — appears as a call argument (other than close/len/cap),
// a return value, a composite-literal element, or the source of an
// assignment to something we don't track — and which objects are function
// parameters. A channel that escapes may be closed by code we cannot see,
// so rule 3 stays silent about it.
func collectChannelFacts(pass *analysis.Pass) *pkgFacts {
	facts := &pkgFacts{
		closed:  make(map[types.Object]bool),
		escaped: make(map[types.Object]bool),
		params:  make(map[types.Object]bool),
	}
	closed, escaped := facts.closed, facts.escaped
	note := func(set map[types.Object]bool, e ast.Expr) {
		if obj := chanObj(pass.Info, e); obj != nil {
			set[obj] = true
		}
	}
	isChan := func(e ast.Expr) bool {
		t := pass.Info.Types[e].Type
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Chan)
		return ok
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				if n.Params != nil {
					for _, field := range n.Params.List {
						for _, name := range field.Names {
							if obj := pass.Info.Defs[name]; obj != nil {
								facts.params[obj] = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for _, r := range n.Values {
					if _, isMake := makeChanCap(pass.Info, r); isMake {
						continue
					}
					if isChan(r) {
						note(escaped, r)
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						switch b.Name() {
						case "close":
							if len(n.Args) == 1 {
								note(closed, n.Args[0])
							}
							return true
						case "len", "cap":
							return true
						}
					}
				}
				for _, arg := range n.Args {
					if isChan(arg) {
						note(escaped, arg)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if isChan(r) {
						note(escaped, r)
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isChan(v) {
						note(escaped, v)
					}
				}
			case *ast.AssignStmt:
				// `x := ch` aliases the channel; treat the RHS as escaped
				// unless it is a make call (initialization).
				for _, r := range n.Rhs {
					if _, isMake := makeChanCap(pass.Info, r); isMake {
						continue
					}
					if isChan(r) {
						note(escaped, r)
					}
				}
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					if isChan(arg) {
						note(escaped, arg)
					}
				}
			}
			return true
		})
	}
	return facts
}

// makeChanCap reports whether e is a `make(chan T)` or `make(chan T, n)`
// call, and if so whether its capacity is a compile-time constant > 0.
func makeChanCap(info *types.Info, e ast.Expr) (constCap bool, isMake bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false, false
	}
	if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
		return false, false
	}
	if len(call.Args) == 0 {
		return false, false
	}
	t := info.Types[call.Args[0]].Type
	if t == nil {
		return false, false
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return false, false
	}
	if len(call.Args) < 2 {
		return false, true // unbuffered
	}
	tv := info.Types[call.Args[1]]
	return tv.Value != nil, true
}

// funcScope tracks, while walking one file, the stack of enclosing
// functions and which channels were made locally with constant capacity.
type funcScope struct {
	hasCtx bool
	// constCapLocal holds channel objects made in this function (or an
	// enclosing one — the slice is copied down) via make(chan T, const).
	constCapLocal map[types.Object]bool
}

func checkFile(pass *analysis.Pass, f *ast.File, facts *pkgFacts) {
	var walk func(n ast.Node, sc *funcScope)
	walk = func(n ast.Node, sc *funcScope) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncDecl:
			if n.Body == nil {
				return
			}
			inner := &funcScope{
				hasCtx:        hasCtxParam(pass.Info, n.Type),
				constCapLocal: make(map[types.Object]bool),
			}
			walkBody(pass, n.Body, inner, facts, walk)
			return
		case *ast.FuncLit:
			// A literal inherits the enclosing function's cancelability and
			// its locally made channels (it lexically captures them).
			inner := &funcScope{constCapLocal: make(map[types.Object]bool)}
			if sc != nil {
				inner.hasCtx = sc.hasCtx
				for k := range sc.constCapLocal {
					inner.constCapLocal[k] = true
				}
			}
			if hasCtxParam(pass.Info, n.Type) {
				inner.hasCtx = true
			}
			walkBody(pass, n.Body, inner, facts, walk)
			return
		}
		children(n, func(c ast.Node) { walk(c, sc) })
	}
	for _, d := range f.Decls {
		walk(d, nil)
	}
}

// walkBody checks one function body's statements under scope sc.
func walkBody(pass *analysis.Pass, body *ast.BlockStmt, sc *funcScope, facts *pkgFacts, walk func(ast.Node, *funcScope)) {
	var inner func(n ast.Node, inSelect bool)
	inner = func(n ast.Node, inSelect bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncDecl, *ast.FuncLit:
			walk(n, sc)
			return
		case *ast.AssignStmt:
			// Record constant-capacity local channels.
			for i, r := range n.Rhs {
				if constCap, isMake := makeChanCap(pass.Info, r); isMake && constCap && i < len(n.Lhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if obj := pass.Info.ObjectOf(id); obj != nil {
							sc.constCapLocal[obj] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			// `var ch = make(chan T, 2)` counts as a local constant-capacity
			// channel too.
			for i, r := range n.Values {
				if constCap, isMake := makeChanCap(pass.Info, r); isMake && constCap && i < len(n.Names) {
					if obj := pass.Info.Defs[n.Names[i]]; obj != nil {
						sc.constCapLocal[obj] = true
					}
				}
			}
		case *ast.SelectStmt:
			// Sends that are comm clauses of a select with an alternative
			// (another arm or a default) cannot block unconditionally.
			multi := len(n.Body.List) >= 2
			for _, cs := range n.Body.List {
				cc, ok := cs.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil {
					inner(cc.Comm, multi)
				}
				for _, s := range cc.Body {
					inner(s, false)
				}
			}
			return
		case *ast.SendStmt:
			if sc.hasCtx && !inSelect {
				obj := chanObj(pass.Info, n.Chan)
				if obj == nil || !sc.constCapLocal[obj] {
					pass.Reportf(n.Pos(),
						"blocking send in a cancelable path; wrap in select with a ctx.Done()/abort arm (or use a locally made constant-capacity channel)")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" && len(n.Args) == 1 {
					if obj := chanObj(pass.Info, n.Args[0]); obj != nil && facts.params[obj] {
						pass.Reportf(n.Pos(),
							"close of channel received as a parameter; only the owner (the maker) should close")
					}
				}
			}
		case *ast.RangeStmt:
			checkRangeRecv(pass, n, facts)
		}
		children(n, func(c ast.Node) { inner(c, false) })
	}
	for _, s := range body.List {
		inner(s, false)
	}
}

// checkRangeRecv flags `for range ch` over a package-local, never-closed,
// never-escaping channel when the loop has no way out.
func checkRangeRecv(pass *analysis.Pass, n *ast.RangeStmt, facts *pkgFacts) {
	t := pass.Info.Types[n.X].Type
	if t == nil {
		return
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return
	}
	obj := chanObj(pass.Info, n.X)
	if obj == nil || facts.closed[obj] || facts.escaped[obj] {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	// Only claim package-complete knowledge for unexported fields and
	// non-parameter locals of this package.
	if v.Pkg() == nil || v.Pkg() != pass.Pkg {
		return
	}
	if v.IsField() {
		if v.Exported() {
			return
		}
	} else if facts.params[obj] || v.Parent() == pass.Pkg.Scope() && v.Exported() {
		return
	}
	if loopHasExit(n.Body) {
		return
	}
	pass.Reportf(n.Pos(),
		"receive loop over %q, which nothing in this package ever closes, has no break/return; the loop can never exit", v.Name())
}

// loopHasExit reports whether the loop body contains a break, return,
// goto, or panic that could leave the loop (nested function literals are
// opaque; breaks inside nested for/select/switch that target those
// constructs do not count).
func loopHasExit(body *ast.BlockStmt) bool {
	found := false
	depth := 0 // nesting of constructs that capture a bare break
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if found || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			switch n.Tok.String() {
			case "break":
				if depth == 0 || n.Label != nil {
					found = true
				}
			case "goto":
				found = true
			}
			return
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					found = true
					return
				}
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			depth++
			children(n, visit)
			depth--
			return
		}
		children(n, visit)
	}
	for _, s := range body.List {
		visit(s)
	}
	return found
}

// hasCtxParam reports whether ft has a parameter of type context.Context.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := info.Types[field.Type].Type
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}

// children calls fn for each immediate child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			fn(m)
		}
		return false
	})
}
