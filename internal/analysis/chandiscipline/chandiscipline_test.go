package chandiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chandiscipline"
)

func TestChanDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", chandiscipline.Analyzer,
		"c/internal/shard",
	)
}
