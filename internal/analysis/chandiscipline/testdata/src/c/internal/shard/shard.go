package shard

import "context"

type result struct{ n int }

// bareSendCancelable: blocking send in a ctx-taking function.
func bareSendCancelable(ctx context.Context, out chan result) {
	out <- result{} // want "blocking send in a cancelable path"
}

// okSelectSend has a cancellation arm.
func okSelectSend(ctx context.Context, out chan result) {
	select {
	case out <- result{}:
	case <-ctx.Done():
	}
}

// okSelectDefault cannot block either.
func okSelectDefault(ctx context.Context, out chan result) {
	select {
	case out <- result{}:
	default:
	}
}

// singleArmSelect is equivalent to a bare send.
func singleArmSelect(ctx context.Context, out chan result) {
	select {
	case out <- result{}: // want "blocking send in a cancelable path"
	}
}

// okResultChannel: the constant-capacity local channel idiom (buffered to
// the number of sends) can never block.
func okResultChannel(ctx context.Context) result {
	ch := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() { ch <- result{n: 1} }()
	}
	return <-ch
}

// okNoCtx: without a context there is no cancelable path to protect.
func okNoCtx(out chan result) {
	out <- result{}
}

// sendInGoroutine: the literal inherits the enclosing cancelability, and
// `out` was not made locally.
func sendInGoroutine(ctx context.Context, out chan result) {
	go func() {
		out <- result{} // want "blocking send in a cancelable path"
	}()
}

// closeParam: a callee must not close a channel it was handed.
func closeParam(out chan result) {
	close(out) // want "close of channel received as a parameter"
}

// owner holds a channel nothing ever closes.
type owner struct {
	events chan result
	feed   chan result
}

// rangeNeverClosed: the events channel has no close anywhere in the
// package and the loop has no exit statement.
func (o *owner) rangeNeverClosed() {
	for ev := range o.events { // want "nothing in this package ever closes"
		_ = ev
	}
}

// rangeWithBreak can exit even if nothing closes the channel.
func (o *owner) rangeWithBreak() {
	for ev := range o.events {
		if ev.n < 0 {
			break
		}
	}
}

// rangeClosedElsewhere: feed is closed in shutdown, so the loop ends.
func (o *owner) rangeClosedElsewhere() {
	for ev := range o.feed {
		_ = ev
	}
}

func (o *owner) shutdown() {
	close(o.feed)
}

// rangeParam: a parameter channel is closed by the caller — exempt.
func rangeParam(in chan result) {
	for ev := range in {
		_ = ev
	}
}

// nestedBreakDoesNotCount: the break leaves the inner select, not the
// range loop.
func (o *owner) nestedBreakDoesNotCount(stop chan struct{}) {
	for ev := range o.events { // want "nothing in this package ever closes"
		select {
		case <-stop:
			break
		default:
		}
		_ = ev
	}
}

// --- prober and connection-pool reaper shapes ---

// probeLoop must not close the done channel it was handed: the spawner
// owns the lifecycle signal.
func probeLoop(tick chan result, done chan struct{}) {
	for range tick {
	}
	close(done) // want "close of channel received as a parameter"
}

// okSpawnProber is the sanctioned shape: the spawning closure closes the
// channel it made, and the loop body only ever receives.
func okSpawnProber(tick chan result) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range tick {
		}
	}()
	return done
}

// pool is a connection pool with a reaper feed.
type pool struct {
	evict chan result
	stale chan result
}

// reapLoop ends because Close closes the evict stream.
func (p *pool) reapLoop() {
	for ev := range p.evict {
		_ = ev
	}
}

func (p *pool) Close() { close(p.evict) }

// staleLoop ranges a channel nothing in the package ever closes, with no
// exit statement in the body.
func (p *pool) staleLoop() {
	for ev := range p.stale { // want "nothing in this package ever closes"
		_ = ev
	}
}
