// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of this repo's
// dependency-free framework.
//
// Fixtures live under <testdata>/src/<import/path>/*.go. A line expecting a
// finding carries a trailing comment of the form
//
//	x := a == b // want "float equality"
//
// with one double-quoted regexp per expected diagnostic on that line.
// Diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test. //lint:ignore directives in fixtures are
// honored, so suppression behavior is testable too.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes the given fixture packages (import paths relative to
// testdata/src) with a and reports mismatches against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	ld, err := newFixtureLoader(srcRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", path, err)
		}
		pass := &analysis.Pass{
			Analyzer: a,
			PkgPath:  pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("analysistest: %s on %s: %v", a.Name, path, err)
		}
		sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files, nil)
		for _, d := range sup.Malformed {
			t.Errorf("%s: %s", d.Pos, d.Message)
		}
		kept, _ := sup.Apply(pass.Diagnostics())
		checkWants(t, pkg, kept)
	}
}

// want is one expected-diagnostic regexp.
type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matching %q", w.pos, w.re)
		}
	}
}

func matchWant(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants extracts want expectations from the fixture comments.
func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRe.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: want comment with no quoted regexp", pos)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants, nil
}

// fixtureLoader type-checks fixture packages, resolving fixture-to-fixture
// imports from source and everything else through stdlib export data.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	// dirs maps fixture import path → directory.
	dirs map[string]string
	// loaded memoizes type-checked fixture packages.
	loaded map[string]*analysis.Package
	std    types.Importer
}

func newFixtureLoader(srcRoot string) (*fixtureLoader, error) {
	ld := &fixtureLoader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		dirs:    make(map[string]string),
		loaded:  make(map[string]*analysis.Package),
	}
	stdImports := make(map[string]bool)
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(srcRoot, dir)
		if err != nil {
			return err
		}
		ld.dirs[filepath.ToSlash(rel)] = dir
		// Pre-scan imports so one `go list` call can fetch all stdlib
		// export data the fixtures need.
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("parse %s: %v", path, err)
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			stdImports[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var std []string
	for p := range stdImports {
		if _, isFixture := ld.dirs[p]; !isFixture {
			std = append(std, p)
		}
	}
	exports, err := stdExports(std)
	if err != nil {
		return nil, err
	}
	ld.std = analysis.ExportImporter(ld.fset, exports)
	return ld, nil
}

// Import implements types.Importer over fixtures + stdlib.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if _, ok := ld.dirs[path]; ok {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *fixtureLoader) load(path string) (*analysis.Package, error) {
	if p, ok := ld.loaded[path]; ok {
		return p, nil
	}
	dir, ok := ld.dirs[path]
	if !ok {
		return nil, fmt.Errorf("no fixture package %q under %s", path, ld.srcRoot)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", path, err)
	}
	p := &analysis.Package{Path: path, Dir: dir, Fset: ld.fset, Files: files, Pkg: tpkg, Info: info}
	ld.loaded[path] = p
	return p, nil
}

// stdExports runs `go list -export` for the stdlib packages fixtures import
// (plus their dependency closure) and returns importPath → export file.
func stdExports(pkgs []string) (map[string]string, error) {
	exports := make(map[string]string)
	if len(pkgs) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-e", "-export", "-json=ImportPath,Export", "-deps", "--"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", pkgs, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e struct{ ImportPath, Export string }
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}
