package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const suppressSrc = `package p

func f() {
	//lint:ignore floateq the next line is vetted
	a := 1
	b := 2 //lint:ignore hotalloc trailing form covers this line
	//lint:ignore floateq
	c := 3
	//lint:ignore nosuch unknown analyzer name
	d := 4
	_, _, _, _ = a, b, c, d
}
`

func TestCollectSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"floateq": true, "hotalloc": true}
	sup := CollectSuppressions(fset, []*ast.File{f}, known)

	// Two malformed directives: the reason-less one and the unknown name.
	if len(sup.Malformed) != 2 {
		t.Fatalf("malformed = %d (%v), want 2", len(sup.Malformed), sup.Malformed)
	}

	mk := func(analyzer string, line int) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: "p.go", Line: line}}
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{mk("floateq", 5), true},   // standalone directive covers next line
		{mk("hotalloc", 5), false}, // wrong analyzer
		{mk("hotalloc", 6), true},  // trailing form covers its own line
		{mk("floateq", 8), false},  // reason-less directive must not suppress
		{mk("floateq", 11), false}, // no directive at all
	}
	for _, c := range cases {
		if got := sup.Suppressed(c.d); got != c.want {
			t.Errorf("Suppressed(%s line %d) = %v, want %v", c.d.Analyzer, c.d.Pos.Line, got, c.want)
		}
	}
}
