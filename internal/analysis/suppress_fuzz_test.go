package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSuppressions wraps one directive comment line into a file and
// collects it, so tables and the fuzzer share one harness.
func parseSuppressions(t testing.TB, comment string, known map[string]bool) (*Suppressions, bool) {
	t.Helper()
	src := "package p\n\nfunc f() {\n\t" + comment + "\n\ta := 1\n\t_ = a\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		return nil, false
	}
	return CollectSuppressions(fset, []*ast.File{f}, known), true
}

// TestSuppressionDirectiveForms pins the parser's contract line by line:
// which directive shapes suppress, which are malformed, and what the
// malformed diagnostic says. The directive sits on line 4, so it covers
// diagnostics on lines 4 and 5.
func TestSuppressionDirectiveForms(t *testing.T) {
	known := map[string]bool{"floateq": true, "hotalloc": true, "goleak": true}
	diag := func(analyzer string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: "p.go", Line: 5}}
	}
	cases := []struct {
		name       string
		comment    string
		suppresses []string // analyzers suppressed on the next line
		malformed  []string // substrings required in malformed messages, in order
	}{
		{
			name:       "single name",
			comment:    "//lint:ignore floateq tolerance vetted upstream",
			suppresses: []string{"floateq"},
		},
		{
			name:       "multi-name list",
			comment:    "//lint:ignore floateq,hotalloc one reason covers both",
			suppresses: []string{"floateq", "hotalloc"},
		},
		{
			// The name list ends at the first space: a spaced list parses
			// as "floateq," plus a reason, so the dangling comma is called
			// out instead of silently ignoring "hotalloc".
			name:       "spaces after commas end the list",
			comment:    "//lint:ignore floateq, hotalloc, goleak spaced list",
			suppresses: []string{"floateq"},
			malformed:  []string{"empty analyzer name"},
		},
		{
			name:       "tab between names and reason",
			comment:    "//lint:ignore floateq\ttab-separated reason",
			suppresses: []string{"floateq"},
		},
		{
			name:      "missing reason",
			comment:   "//lint:ignore floateq",
			malformed: []string{"malformed"},
		},
		{
			name:      "reason of only spaces",
			comment:   "//lint:ignore floateq    ",
			malformed: []string{"malformed"},
		},
		{
			name:      "no names at all",
			comment:   "//lint:ignore",
			malformed: []string{"malformed"},
		},
		{
			name:      "unknown analyzer",
			comment:   "//lint:ignore flaoteq typo in the name",
			malformed: []string{`unknown analyzer "flaoteq"`},
		},
		{
			name:       "one good name, one unknown",
			comment:    "//lint:ignore floateq,nosuch half the list is real",
			suppresses: []string{"floateq"},
			malformed:  []string{`unknown analyzer "nosuch"`},
		},
		{
			name:       "empty element in list",
			comment:    "//lint:ignore floateq,,hotalloc double comma",
			suppresses: []string{"floateq", "hotalloc"},
			malformed:  []string{"empty analyzer name"},
		},
		{
			name:      "trailing comma",
			comment:   "//lint:ignore floateq, dangling comma eats the reason word",
			malformed: []string{"empty analyzer name"},
			// "dangling..." is still a reason, and "floateq" still parses:
			suppresses: []string{"floateq"},
		},
		{
			name:       "unrelated comment",
			comment:    "// just prose mentioning lint:ignore semantics",
			suppresses: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sup, ok := parseSuppressions(t, tc.comment, known)
			if !ok {
				t.Fatalf("fixture source did not parse for %q", tc.comment)
			}
			for name := range known {
				want := false
				for _, s := range tc.suppresses {
					want = want || s == name
				}
				if got := sup.Suppressed(diag(name)); got != want {
					t.Errorf("Suppressed(%s) = %v, want %v", name, got, want)
				}
			}
			if len(sup.Malformed) != len(tc.malformed) {
				t.Fatalf("malformed = %v, want %d entries", sup.Malformed, len(tc.malformed))
			}
			for i, substr := range tc.malformed {
				if !strings.Contains(sup.Malformed[i].Message, substr) {
					t.Errorf("malformed[%d] = %q, want substring %q", i, sup.Malformed[i].Message, substr)
				}
			}
		})
	}
}

// TestSuppressionDirectiveCoversOwnAndNextLineOnly pins the two-line window:
// a directive must not leak to line+2.
func TestSuppressionDirectiveCoversOwnAndNextLineOnly(t *testing.T) {
	known := map[string]bool{"floateq": true}
	sup, ok := parseSuppressions(t, "//lint:ignore floateq window check", known)
	if !ok {
		t.Fatal("fixture did not parse")
	}
	for line, want := range map[int]bool{3: false, 4: true, 5: true, 6: false} {
		d := Diagnostic{Analyzer: "floateq", Pos: token.Position{Filename: "p.go", Line: line}}
		if got := sup.Suppressed(d); got != want {
			t.Errorf("line %d suppressed = %v, want %v", line, got, want)
		}
	}
}

// FuzzCollectSuppressions feeds arbitrary directive bodies through the
// parser. The invariants: never panic, never suppress under an analyzer
// name that is empty or unknown, and classify every //lint:ignore comment
// as contributing a suppression, a malformed diagnostic, or both.
func FuzzCollectSuppressions(f *testing.F) {
	for _, seed := range []string{
		"floateq reason",
		"floateq,hotalloc shared reason",
		"floateq",
		"",
		" ",
		",, ,",
		"floateq\treason",
		"floateq,,hotalloc reason",
		"a b c d",
		"floateq \t ",
		"floateq,нет unicode name",
		strings.Repeat("x,", 100) + " long list",
	} {
		f.Add(seed)
	}
	known := map[string]bool{"floateq": true, "hotalloc": true}
	f.Fuzz(func(t *testing.T, body string) {
		// Newlines would split the comment and change the shape of the file;
		// a line comment can't contain them anyway.
		if strings.ContainsAny(body, "\n\r") {
			t.Skip()
		}
		sup, ok := parseSuppressions(t, "//lint:ignore "+body, known)
		if !ok {
			t.Skip() // e.g. a NUL or BOM byte the parser rejects
		}
		suppressedAny := false
		for name := range known {
			for line := 1; line <= 7; line++ {
				d := Diagnostic{Analyzer: name, Pos: token.Position{Filename: "p.go", Line: line}}
				if !sup.Suppressed(d) {
					continue
				}
				suppressedAny = true
				if line != 4 && line != 5 {
					t.Fatalf("directive on line 4 suppressed line %d", line)
				}
			}
		}
		// The empty analyzer name must never be a suppression key.
		empty := Diagnostic{Analyzer: "", Pos: token.Position{Filename: "p.go", Line: 5}}
		if sup.Suppressed(empty) {
			t.Fatalf("empty analyzer name suppressed a diagnostic (body %q)", body)
		}
		if !suppressedAny && len(sup.Malformed) == 0 {
			t.Fatalf("directive %q neither suppressed nor reported malformed", body)
		}
		for _, m := range sup.Malformed {
			if m.Message == "" || m.Analyzer != "lint" {
				t.Fatalf("malformed diagnostic missing message/analyzer: %+v", m)
			}
		}
	})
}
