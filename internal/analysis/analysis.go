// Package analysis is a small, dependency-free analyzer framework modeled
// on golang.org/x/tools/go/analysis. The container this repo builds in has
// no module proxy access, so instead of depending on x/tools the framework
// re-implements the minimal surface the project's analyzers need: an
// Analyzer descriptor, a per-package Pass with full type information, a
// loader built on `go list -export` plus the standard library's gc export
// data importer, and `//lint:ignore`-style suppressions.
//
// The analyzers themselves live in subpackages (hotalloc, ctxflow,
// atomiccounter, floateq) and are registered in internal/analysis/suite,
// which cmd/3dpro-lint drives.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Must be a single lowercase word.
	Name string
	// Doc is a one-paragraph description: first line is a summary,
	// the rest explains the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer

	// PkgPath is the import path `go list` reported for the package
	// (fixture packages in tests use synthetic paths).
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, in file/line order.
func (p *Pass) Diagnostics() []Diagnostic {
	sortDiagnostics(p.diags)
	return p.diags
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// PathHasSuffix reports whether pkgPath ends with the path-segment suffix
// (e.g. "internal/core" matches "repro/internal/core" and "internal/core"
// but not "repro/xinternal/core"). Analyzers scope themselves by suffix so
// fixture packages with synthetic module prefixes match too.
func PathHasSuffix(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+suffix)
}

// PathHasAnySuffix reports whether pkgPath matches any of the suffixes.
func PathHasAnySuffix(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if PathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// IsMethodOn reports whether the called object is the named method on the
// named type defined in a package whose path ends with pkgSuffix. Pointer
// receivers match too.
func IsMethodOn(obj types.Object, pkgSuffix, typeName, method string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Name() != typeName || tn.Pkg() == nil {
		return false
	}
	return PathHasSuffix(tn.Pkg().Path(), pkgSuffix)
}

// CalleeFunc resolves the *types.Func statically called by call, or nil for
// dynamic calls (function values, interface methods resolve to the interface
// method object, which is still returned).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether obj is the named function from the package with
// the exact import path pkgPath (e.g. "context", "sync/atomic").
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}
