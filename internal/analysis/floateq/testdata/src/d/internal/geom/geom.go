// Package geom is the floateq fixture: float equality between computed
// values is flagged; exact-representable constant comparisons are allowed.
package geom

type Vec3 struct{ X, Y, Z float64 }

type Triangle struct{ A, B, C Vec3 }

// Degenerate checks against exact constants: sanctioned, no findings.
func Degenerate(den, t float64) bool {
	return den == 0 || t == 1 || t == 0.5
}

// Computed compares two rounded values.
func Computed(a, b float64) bool {
	return a == b // want "float equality"
}

// NotEqual is the same bug with !=.
func NotEqual(a, b float64) bool {
	return a != b // want "float equality"
}

// InexactConst compares against a constant that float64 cannot represent.
func InexactConst(x float64) bool {
	return x == 0.1 // want "float equality"
}

// StructEq compares whole float-bearing structs.
func StructEq(u, v Vec3) bool {
	return u == v // want "float equality"
}

// TriEq recurses through nested structs.
func TriEq(s, t Triangle) bool {
	return s != t // want "float equality"
}

// Ints are not floats: no finding.
func Ints(i, j int) bool { return i == j }

// Strings are not floats either.
func Strings(a, b string) bool { return a == b }

// Float32 is covered like float64.
func Float32(a, b float32) bool {
	return a == b // want "float equality"
}

// Vetted carries a justified suppression.
func Vetted(prev, cur float64) bool {
	//lint:ignore floateq fixture: change detection on a value copied verbatim, not recomputed
	return prev != cur
}
