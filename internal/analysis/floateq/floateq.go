// Package floateq flags float equality comparisons in the geometry code.
//
// The paper's LOD-monotonicity guarantees (§4: lower-LOD intersection
// implies higher-LOD intersection; lower-LOD distance lower-bounds
// higher-LOD distance) are proved over exact predicates. In floating point,
// `a == b` between two *computed* values is almost always a latent bug: the
// two sides travel different rounding paths and the predicate silently
// flips near the boundary, which breaks the refinement ladder's
// "settle-at-lower-LOD" pruning in exactly the near-miss cases FPR exists
// for.
//
// Flagged in internal/geom, internal/mesh, and internal/core: `==` / `!=`
// where both operands are floating point (directly, or structs/arrays that
// contain floats — Vec3, Triangle, Box3) and neither side is an
// exactly-representable constant. Comparisons against exact constants
// (`den == 0`, `t == 1`) are the sanctioned degenerate-case tests and are
// not flagged; a comparison against an inexact constant like `x == 0.1` is.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on floating-point values outside exact-representable constant comparisons\n\n" +
		"In internal/geom, internal/mesh and internal/core, comparing two computed\n" +
		"floats (or Vec3/Triangle/Box3 values) for equality breaks LOD monotonicity\n" +
		"near predicate boundaries; compare against an epsilon, use math.Nextafter\n" +
		"bounds, or suppress with a justification.",
	Run: run,
}

var scopePackages = []string{"internal/geom", "internal/mesh", "internal/core"}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.PkgPath, scopePackages...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt := pass.Info.Types[bin.X]
			yt := pass.Info.Types[bin.Y]
			if xt.Type == nil || yt.Type == nil {
				return true
			}
			if !containsFloat(xt.Type) && !containsFloat(yt.Type) {
				return true
			}
			// Both sides constant folds at compile time; one exact constant
			// side is the sanctioned degenerate test.
			if isExactConst(pass, bin.X) || isExactConst(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(),
				"float equality (%s) between computed values; compare with a tolerance or justify via //lint:ignore floateq", bin.Op)
			return true
		})
	}
	return nil
}

// isExactConst reports whether expr is a constant whose value is exactly
// representable in float64 (0, 1, 0.5, ... but not 0.1).
//
// The type-checker records constants *after* conversion to the comparison
// type, which rounds away the evidence (`0.1` becomes the nearest float64,
// which is trivially "exact"). So exactness is judged on the pre-conversion
// value: the source literal where there is one, the declared constant value
// for untyped named constants, and the recorded value otherwise.
func isExactConst(pass *analysis.Pass, expr ast.Expr) bool {
	tv := pass.Info.Types[expr]
	if tv.Value == nil {
		return false
	}
	v := tv.Value
	switch e := ast.Unparen(unwrapSign(expr)).(type) {
	case *ast.BasicLit:
		if e.Kind == token.FLOAT || e.Kind == token.INT {
			v = constant.MakeFromLiteral(e.Value, e.Kind, 0)
		}
	case *ast.Ident:
		if c, ok := pass.Info.Uses[e].(*types.Const); ok {
			v = c.Val()
		}
	case *ast.SelectorExpr:
		if c, ok := pass.Info.Uses[e.Sel].(*types.Const); ok {
			v = c.Val()
		}
	}
	f := constant.ToFloat(v)
	if f.Kind() != constant.Float {
		return false
	}
	_, exact := constant.Float64Val(f)
	return exact
}

// unwrapSign strips leading unary +/- so `x == -1.5` sees the literal.
func unwrapSign(expr ast.Expr) ast.Expr {
	for {
		u, ok := ast.Unparen(expr).(*ast.UnaryExpr)
		if !ok || (u.Op != token.SUB && u.Op != token.ADD) {
			return ast.Unparen(expr)
		}
		expr = u.X
	}
}

// containsFloat reports whether a value of type t transitively contains a
// floating-point or complex component that participates in ==.
func containsFloat(t types.Type) bool {
	return containsFloatVisited(t, make(map[types.Type]bool))
}

func containsFloatVisited(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Array:
		return containsFloatVisited(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloatVisited(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
