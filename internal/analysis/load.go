package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (e.g. "./...") in the
// module rooted at dir, resolving dependencies — including the standard
// library — through compiler export data produced by `go list -export`.
// Only non-test sources are loaded: the lint invariants target production
// code, and test-only dependencies would otherwise need export data too.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,DepOnly,Standard,Incomplete,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if e.Incomplete || e.Error != nil {
			msg := "unknown error"
			if e.Error != nil {
				msg = e.Error.Err
			}
			return nil, fmt.Errorf("package %s does not build: %s", e.ImportPath, msg)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		p, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that reads gc export data files
// from the given importPath → file map. Paths that the compiler recorded
// without the stdlib "vendor/" prefix are retried with it.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			f, ok = exports["vendor/"+path]
		}
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", gf, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// NewInfo allocates the types.Info maps every pass relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
