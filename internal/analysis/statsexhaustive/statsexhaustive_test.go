package statsexhaustive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statsexhaustive"
)

func TestStatsExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", statsexhaustive.Analyzer,
		"e/internal/core",
		"e/internal/server",
	)
}
