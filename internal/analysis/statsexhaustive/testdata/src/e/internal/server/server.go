package server

import (
	"e/internal/core"
)

// statsJSON mirrors core.Stats. The mirror below forgets to assign
// SkippedOut and never reads core.Stats.NewCounter.
type statsJSON struct { // want "core.Stats.NewCounter is not serialized"
	Candidates  int64 `json:"candidates"`
	Results     int64 `json:"results"`
	SkippedOut  int64 `json:"skipped"` // want "statsJSON.SkippedOut is never assigned"
	LODsSkipped int64 `json:"lods_skipped"`
}

func statsOut(st *core.Stats) statsJSON {
	return statsJSON{
		Candidates:  st.Candidates,
		Results:     st.Results,
		LODsSkipped: st.LODsSkipped,
	}
}
