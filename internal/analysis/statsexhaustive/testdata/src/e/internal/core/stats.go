package core

import (
	"fmt"

	"e/internal/cache"
)

// Stats mimics the real structure: three counters, each method forgetting
// a different one.
type Stats struct {
	Candidates int64
	Results    int64 // want "Stats.Results is not handled in \\(\\*Stats\\).String"
	NewCounter int64 // want "Stats.NewCounter is not handled in \\(\\*Stats\\).Merge"
	// LODsSkipped mimics a margin-scheduler counter wired everywhere it
	// must be (Merge, String, the server mirror): no diagnostics — the
	// analyzer accepts a fully-handled new field.
	LODsSkipped int64
}

// Merge forgets NewCounter — the Σ-invariant silently breaks.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	s.Candidates += other.Candidates
	s.Results += other.Results
	s.LODsSkipped += other.LODsSkipped
}

// String forgets Results.
func (s *Stats) String() string {
	return fmt.Sprintf("candidates=%d new=%d skipped=%d", s.Candidates, s.NewCounter, s.LODsSkipped)
}

// collector carries the per-query attribution sink; Misses is never read
// back, so its attribution is dropped.
type collector struct {
	cacheCtrs cache.Counters // want "cache.Counters.Misses is never consumed"
}

func (c *collector) snapshot() Stats {
	return Stats{
		Candidates: c.cacheCtrs.Hits.Load(),
		Results:    c.cacheCtrs.WarmStarts.Load(),
	}
}
