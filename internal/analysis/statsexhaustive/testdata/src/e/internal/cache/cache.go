package cache

import "sync/atomic"

// Counters is the per-query attribution sink, as in the real cache.
type Counters struct {
	Hits       atomic.Int64
	Misses     atomic.Int64
	WarmStarts atomic.Int64
}
