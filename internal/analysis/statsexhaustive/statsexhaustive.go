// Package statsexhaustive guards the Σ-invariant plumbing: every field of
// core.Stats, every per-query cache.Counters counter, and every field of
// the server's statsJSON mirror must be handled wherever stats are merged,
// printed, or serialized. A counter added to core.Stats that skips
// (*Stats).Merge silently breaks PR 6's "coordinator totals == Σ per-shard
// Stats" invariant; one that skips the statsJSON mirror silently vanishes
// from the API.
//
// Concretely, in internal/core:
//
//   - every Stats field must be referenced in (*Stats).Merge;
//   - every Stats field must be referenced in (*Stats).String;
//   - every field of a cache.Counters-typed struct field (the per-query
//     attribution sink) must be read somewhere in the package — an
//     unconsumed counter means attribution is silently dropped.
//
// And in internal/server:
//
//   - every statsJSON field must be assigned by the mirror functions
//     (those returning statsJSON), and every core.Stats field must be read
//     by them, so the JSON round-trip tracks the struct in both
//     directions.
package statsexhaustive

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statsexhaustive",
	Doc: "core.Stats, cache.Counters, and statsJSON fields must be handled exhaustively\n\n" +
		"Every Stats field appears in Merge and String; every per-query cache.Counters\n" +
		"counter is consumed by the engine; every statsJSON field is assigned (and every\n" +
		"Stats field read) by the server's mirror functions. A field that skips Merge\n" +
		"breaks the shard Σ-invariant silently; one that skips the mirror vanishes\n" +
		"from the API.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	switch {
	case analysis.PathHasSuffix(pass.PkgPath, "internal/core"):
		checkStatsMethods(pass)
		checkCountersConsumed(pass)
	case analysis.PathHasSuffix(pass.PkgPath, "internal/server"):
		checkMirror(pass)
	}
	return nil
}

// statsFields returns core.Stats' field objects, from this package's scope
// (core) or an imported package (server).
func statsStruct(pkg *types.Package) []*types.Var {
	lookup := func(p *types.Package) []*types.Var {
		obj := p.Scope().Lookup("Stats")
		if obj == nil {
			return nil
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		fields := make([]*types.Var, 0, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields = append(fields, st.Field(i))
		}
		return fields
	}
	if analysis.PathHasSuffix(pkg.Path(), "internal/core") {
		return lookup(pkg)
	}
	for _, imp := range pkg.Imports() {
		if analysis.PathHasSuffix(imp.Path(), "internal/core") {
			return lookup(imp)
		}
	}
	return nil
}

// fieldRefs collects, into refs, every struct field object selected or
// keyed anywhere under n: plain selector uses (s.F, read or write) and
// composite-literal keys (T{F: v}).
func fieldRefs(pass *analysis.Pass, n ast.Node, refs map[*types.Var]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[m]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					refs[v] = true
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := m.Key.(*ast.Ident); ok {
				if v, ok := pass.Info.Uses[id].(*types.Var); ok && v.IsField() {
					refs[v] = true
				}
			}
		}
		return true
	})
}

// methodBody finds the body of the method with the given name on the named
// receiver type (pointer or value receiver).
func methodBody(pass *analysis.Pass, typeName, method string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := pass.Info.Types[fd.Recv.List[0].Type].Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == typeName {
				return fd
			}
		}
	}
	return nil
}

// checkStatsMethods verifies every Stats field is referenced in Merge and
// in String. Diagnostics anchor at the field declaration so a vetted
// omission can carry a //lint:ignore there.
func checkStatsMethods(pass *analysis.Pass) {
	fields := statsStruct(pass.Pkg)
	if len(fields) == 0 {
		return
	}
	for _, method := range []string{"Merge", "String"} {
		fd := methodBody(pass, "Stats", method)
		if fd == nil || fd.Body == nil {
			continue // no such method in this (fixture) package
		}
		refs := make(map[*types.Var]bool)
		fieldRefs(pass, fd.Body, refs)
		for _, f := range fields {
			if !refs[f] {
				pass.Reportf(f.Pos(),
					"Stats.%s is not handled in (*Stats).%s; every Stats field must be %s (or carry a reasoned lint:ignore)",
					f.Name(), method, map[string]string{"Merge": "merged — the shard Σ-invariant breaks silently otherwise", "String": "formatted"}[method])
			}
		}
	}
}

// checkCountersConsumed verifies that for every struct field whose type is
// cache.Counters, each Counters counter is read somewhere in this package.
// The diagnostic anchors at the Counters-typed field declaration.
func checkCountersConsumed(pass *analysis.Pass) {
	// Find Counters-typed fields declared in this package's structs.
	type sink struct {
		declPos ast.Node
		ctrs    *types.Struct
	}
	var sinks []sink
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				t := pass.Info.Types[field.Type].Type
				named, ok := t.(*types.Named)
				if !ok {
					continue
				}
				obj := named.Obj()
				if obj.Name() != "Counters" || obj.Pkg() == nil ||
					!analysis.PathHasSuffix(obj.Pkg().Path(), "internal/cache") {
					continue
				}
				if cs, ok := named.Underlying().(*types.Struct); ok {
					sinks = append(sinks, sink{declPos: field.Type, ctrs: cs})
				}
			}
			return true
		})
	}
	if len(sinks) == 0 {
		return
	}
	// Collect every field selection in the package once.
	refs := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		fieldRefs(pass, f, refs)
	}
	for _, s := range sinks {
		for i := 0; i < s.ctrs.NumFields(); i++ {
			f := s.ctrs.Field(i)
			if !refs[f] {
				pass.Reportf(s.declPos.Pos(),
					"cache.Counters.%s is never consumed in this package; per-query attribution for it is silently dropped",
					f.Name())
			}
		}
	}
}

// checkMirror verifies the statsJSON mirror covers both directions: every
// statsJSON field assigned, every core.Stats field read, within the set of
// functions returning statsJSON.
func checkMirror(pass *analysis.Pass) {
	obj := pass.Pkg.Scope().Lookup("statsJSON")
	if obj == nil {
		return
	}
	jsonStruct, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	// The AST positions of statsJSON's fields, for anchoring.
	stats := statsStruct(pass.Pkg)

	// Mirror functions: declared functions whose results include statsJSON.
	var mirrors []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil {
				continue
			}
			for _, r := range fd.Type.Results.List {
				t := pass.Info.Types[r.Type].Type
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj() == obj {
					mirrors = append(mirrors, fd)
					break
				}
			}
		}
	}
	if len(mirrors) == 0 {
		if jsonStruct.NumFields() > 0 {
			pass.Reportf(obj.Pos(), "statsJSON has no mirror function (a declared function returning statsJSON)")
		}
		return
	}
	refs := make(map[*types.Var]bool)
	for _, fd := range mirrors {
		fieldRefs(pass, fd.Body, refs)
	}
	for i := 0; i < jsonStruct.NumFields(); i++ {
		f := jsonStruct.Field(i)
		if !refs[f] {
			pass.Reportf(f.Pos(),
				"statsJSON.%s is never assigned by the mirror functions; the JSON round-trip drops it", f.Name())
		}
	}
	for _, f := range stats {
		if !refs[f] {
			// Stats fields live in another package; anchor at the statsJSON
			// type so the diagnostic (and any suppression) sits in this one.
			pass.Reportf(obj.Pos(),
				"core.Stats.%s is not serialized by the statsJSON mirror functions", f.Name())
		}
	}
}
