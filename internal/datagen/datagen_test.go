package datagen

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/index/aabbtree"
	"repro/internal/ppvp"
)

func TestNucleiBasics(t *testing.T) {
	opts := NucleiOptions{Count: 27, Seed: 1}
	nuclei := Nuclei(opts)
	if len(nuclei) != 27 {
		t.Fatalf("count = %d", len(nuclei))
	}
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(100, 100, 100)}
	for i, n := range nuclei {
		if err := n.Validate(); err != nil {
			t.Fatalf("nucleus %d invalid: %v", i, err)
		}
		if n.NumFaces() != 320 {
			t.Errorf("nucleus %d has %d faces, want 320", i, n.NumFaces())
		}
		if !space.Expand(1e-9).Contains(n.Bounds()) {
			t.Errorf("nucleus %d escapes the space: %v", i, n.Bounds())
		}
	}
}

func TestNucleiDisjointWithinDataset(t *testing.T) {
	nuclei := Nuclei(NucleiOptions{Count: 27, Seed: 2})
	trees := make([]*aabbtree.Tree, len(nuclei))
	for i, n := range nuclei {
		trees[i] = aabbtree.Build(n.Triangles())
	}
	for i := range trees {
		for j := i + 1; j < len(trees); j++ {
			if !trees[i].Bounds().Intersects(trees[j].Bounds()) {
				continue
			}
			if trees[i].IntersectsTree(trees[j]) {
				t.Fatalf("nuclei %d and %d intersect", i, j)
			}
		}
	}
}

func TestNucleiDeterministic(t *testing.T) {
	a := Nuclei(NucleiOptions{Count: 5, Seed: 7})
	b := Nuclei(NucleiOptions{Count: 5, Seed: 7})
	for i := range a {
		if a[i].NumVertices() != b[i].NumVertices() {
			t.Fatal("non-deterministic generation")
		}
		for j := range a[i].Vertices {
			if a[i].Vertices[j] != b[i].Vertices[j] {
				t.Fatal("non-deterministic vertices")
			}
		}
	}
	c := Nuclei(NucleiOptions{Count: 5, Seed: 8})
	if c[0].Vertices[0] == a[0].Vertices[0] {
		t.Error("different seeds produced identical data")
	}
}

func TestSecondSegmentationIntersectsFirst(t *testing.T) {
	// The offset dataset must intersect the original one (the paper's
	// intersection-join workload needs hits).
	a := Nuclei(NucleiOptions{Count: 8, Seed: 3})
	b := Nuclei(NucleiOptions{Count: 8, Seed: 4, Offset: geom.V(0.8, 0.5, 0.3)})
	hits := 0
	for i := range a {
		ta := aabbtree.Build(a[i].Triangles())
		for j := range b {
			if !a[i].Bounds().Intersects(b[j].Bounds()) {
				continue
			}
			if ta.IntersectsTree(aabbtree.Build(b[j].Triangles())) {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Error("offset dataset never intersects the original")
	}
}

func TestNucleiMostlyProtruding(t *testing.T) {
	// The paper reports ≈99 % protruding vertices for nuclei; require ≥95 %.
	nuclei := Nuclei(NucleiOptions{Count: 4, Seed: 5})
	var prot, total int
	for _, n := range nuclei {
		p, e := ppvp.ProfileProtruding(n)
		prot += p
		total += e
	}
	if total == 0 {
		t.Fatal("nothing examined")
	}
	if frac := float64(prot) / float64(total); frac < 0.95 {
		t.Errorf("nuclei protruding fraction = %v, want >= 0.95", frac)
	}
}

func TestVesselsBasics(t *testing.T) {
	opts := VesselOptions{Count: 4, Seed: 1}
	vessels := Vessels(opts)
	if len(vessels) != 4 {
		t.Fatalf("count = %d", len(vessels))
	}
	for i, v := range vessels {
		if err := v.Validate(); err != nil {
			t.Fatalf("vessel %d invalid: %v", i, err)
		}
		if v.NumFaces() < 500 {
			t.Errorf("vessel %d only has %d faces", i, v.NumFaces())
		}
		if v.Volume() <= 0 {
			t.Errorf("vessel %d volume %v", i, v.Volume())
		}
	}
}

func TestVesselsDisjoint(t *testing.T) {
	vessels := Vessels(VesselOptions{Count: 4, Seed: 2})
	trees := make([]*aabbtree.Tree, len(vessels))
	for i, v := range vessels {
		trees[i] = aabbtree.Build(v.Triangles())
	}
	for i := range trees {
		for j := i + 1; j < len(trees); j++ {
			if trees[i].Bounds().Intersects(trees[j].Bounds()) &&
				trees[i].IntersectsTree(trees[j]) {
				t.Fatalf("vessels %d and %d intersect", i, j)
			}
		}
	}
}

func TestVesselsCompressible(t *testing.T) {
	// Vessels must survive the full PPVP pipeline with the subset property
	// (volume monotone in LOD).
	v := Vessels(VesselOptions{Count: 1, Seed: 3, RingSegments: 8, PathPoints: 8})[0]
	c, st, err := ppvp.Compress(v, ppvp.DefaultOptions())
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if st.VerticesRemoved == 0 {
		t.Error("no vertices removed from vessel")
	}
	var prev float64
	for lod := 0; lod <= c.MaxLOD(); lod++ {
		g, err := c.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("vessel LOD %d invalid: %v", lod, err)
		}
		if g.Volume() < prev-1e-9 {
			t.Fatalf("vessel volume decreased at LOD %d", lod)
		}
		prev = g.Volume()
	}
}

func TestVesselsProtrudingFractionBelowNuclei(t *testing.T) {
	v := Vessels(VesselOptions{Count: 2, Seed: 6})
	var prot, total int
	for _, m := range v {
		p, e := ppvp.ProfileProtruding(m)
		prot += p
		total += e
	}
	if total == 0 {
		t.Fatal("nothing examined")
	}
	frac := float64(prot) / float64(total)
	if frac < 0.4 || frac > 0.999 {
		t.Errorf("vessel protruding fraction = %v, want within (0.4, 0.999)", frac)
	}
}

func TestVesselsDeterministic(t *testing.T) {
	a := Vessels(VesselOptions{Count: 2, Seed: 9})
	b := Vessels(VesselOptions{Count: 2, Seed: 9})
	for i := range a {
		if a[i].NumVertices() != b[i].NumVertices() || a[i].NumFaces() != b[i].NumFaces() {
			t.Fatal("non-deterministic vessels")
		}
	}
}

func TestGridCells(t *testing.T) {
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(10, 10, 10)}
	cells := gridCells(space, 5)
	if len(cells) < 5 {
		t.Fatalf("cells = %d, want >= 5", len(cells))
	}
	for _, c := range cells {
		if !space.Expand(1e-9).Contains(c) {
			t.Errorf("cell %v outside space", c)
		}
	}
}

func TestDefaults(t *testing.T) {
	var n NucleiOptions
	n.setDefaults()
	if n.Count <= 0 || n.SubdivisionLevel != 2 || n.NoiseAmplitude <= 0 {
		t.Errorf("nuclei defaults: %+v", n)
	}
	var v VesselOptions
	v.setDefaults()
	if v.Count <= 0 || v.Bifurcations != 5 || v.RingSegments < 3 {
		t.Errorf("vessel defaults: %+v", v)
	}
}
