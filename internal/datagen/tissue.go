package datagen

import (
	"repro/internal/index/aabbtree"
	"repro/internal/mesh"
)

// TissueOptions configures a combined nuclei + vessels sample sharing one
// space, like the paper's brain-tissue dataset.
type TissueOptions struct {
	Nuclei  NucleiOptions
	Vessels VesselOptions
}

// Tissue generates vessels and nuclei in the same space with mutually
// disjoint interiors: nuclei that intersect (or sit inside) a vessel are
// discarded, mimicking real tissue where nuclei surround the vasculature.
// The returned nuclei count may therefore be slightly below the requested
// count. The disjointness makes the pair valid for distance queries (see
// the core package precondition).
func Tissue(opts TissueOptions) (nuclei, vessels []*mesh.Mesh) {
	if opts.Vessels.Space.IsEmpty() || opts.Vessels.Space.Volume() <= 0 {
		opts.Vessels.Space = opts.Nuclei.Space
	}
	vessels = Vessels(opts.Vessels)
	trees := make([]*aabbtree.Tree, len(vessels))
	for i, v := range vessels {
		trees[i] = aabbtree.Build(v.Triangles())
	}

	candidates := Nuclei(opts.Nuclei)
	for _, n := range candidates {
		tree := aabbtree.Build(n.Triangles())
		ok := true
		for _, vt := range trees {
			if !vt.Bounds().Intersects(tree.Bounds()) {
				continue
			}
			if vt.IntersectsTree(tree) || vt.ContainsPoint(n.Vertices[0]) {
				ok = false
				break
			}
		}
		if ok {
			nuclei = append(nuclei, n)
		}
	}
	return nuclei, vessels
}
