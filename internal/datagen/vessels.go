package datagen

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/index/aabbtree"
	"repro/internal/mesh"
)

// VesselOptions configures vessel generation.
type VesselOptions struct {
	// Count is the number of vessels.
	Count int
	// Space is the box the dataset must fit inside.
	Space geom.Box3
	// Bifurcations per vessel (default 5, the paper's average).
	Bifurcations int
	// RingSegments is the number of vertices per tube cross-section
	// (default 10). Together with PathPoints it sets the face budget.
	RingSegments int
	// PathPoints per tube segment (default 10).
	PathPoints int
	// Seed drives all randomness.
	Seed int64
}

func (o *VesselOptions) setDefaults() {
	if o.Count <= 0 {
		o.Count = 10
	}
	if o.Space.IsEmpty() || o.Space.Volume() <= 0 {
		o.Space = geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(100, 100, 100)}
	}
	if o.Bifurcations <= 0 {
		o.Bifurcations = 5
	}
	if o.RingSegments < 3 {
		o.RingSegments = 10
	}
	if o.PathPoints < 2 {
		o.PathPoints = 10
	}
}

// Vessels generates Count bifurcated vessels on a grid inside Space. Each
// vessel is a tree of closed tube segments (trunk plus branches); segments
// of the same vessel are mutually disjoint closed surfaces, so the union is
// a valid (multi-component) polyhedron and point containment, volume, and
// the PPVP subset guarantee all behave. Vessels never intersect each other.
func Vessels(opts VesselOptions) []*mesh.Mesh {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	cells := gridCells(opts.Space, opts.Count)

	out := make([]*mesh.Mesh, 0, opts.Count)
	for i := 0; i < opts.Count; i++ {
		cell := cells[i].Expand(-0.02 * cells[i].Diagonal()) // margin between vessels
		var v *mesh.Mesh
		for attempt := 0; attempt < 8; attempt++ {
			v = growVessel(rng, cell, opts)
			if v != nil {
				break
			}
		}
		if v == nil {
			// Extremely unlikely; fall back to a single straight tube.
			c := cell.Center()
			half := cell.Size().Mul(0.35)
			v = mesh.Tube(
				[]geom.Vec3{c.Sub(geom.V(half.X, 0, 0)), c.Add(geom.V(half.X, 0, 0))},
				[]float64{cell.Diagonal() * 0.02, cell.Diagonal() * 0.02},
				opts.RingSegments)
		}
		out = append(out, v)
	}
	return out
}

// branch is one tube segment of the vessel tree.
type branch struct {
	path  []geom.Vec3
	radii []float64
}

// growVessel grows one bifurcated tree inside the cell and returns it as a
// single mesh, or nil when the segments could not be kept disjoint.
func growVessel(rng *rand.Rand, cell geom.Box3, opts VesselOptions) *mesh.Mesh {
	branches := growBranches(rng, cell, opts)

	// Build the tubes, dropping any branch that would intersect or nest
	// inside an already accepted one: the union must stay a disjoint set of
	// closed surfaces for point-containment parity to work.
	var trees []*aabbtree.Tree
	merged := &mesh.Mesh{}
	kept := 0
	for _, b := range branches {
		t := mesh.Tube(b.path, b.radii, opts.RingSegments)
		if t == nil || t.Validate() != nil {
			continue
		}
		tree := aabbtree.Build(t.Triangles())
		ok := true
		for _, prev := range trees {
			if tree.IntersectsTree(prev) || prev.ContainsPoint(b.path[0]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		trees = append(trees, tree)
		appendMesh(merged, t)
		kept++
	}
	// A vessel should look bifurcated: require a trunk plus at least three
	// branches, otherwise let the caller retry with fresh randomness.
	if kept < 4 || merged.Validate() != nil {
		return nil
	}
	return merged
}

// growBranches random-walks the branch skeleton of one vessel tree.
func growBranches(rng *rand.Rand, cell geom.Box3, opts VesselOptions) []branch {
	scale := cell.Size()
	minEdge := math.Min(scale.X, math.Min(scale.Y, scale.Z))
	baseRadius := 0.05 * minEdge
	segLen := 0.35 * minEdge

	type stub struct {
		start geom.Vec3
		dir   geom.Vec3
		r     float64
		depth int
	}
	start := cell.Center().Sub(geom.V(0, 0, 0.4*scale.Z))
	queue := []stub{{start: start, dir: geom.V(0.1, 0.1, 1).Normalize(), r: baseRadius, depth: 0}}

	var branches []branch
	bifurcationsLeft := opts.Bifurcations

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]

		// Random-walked path with a bulging radius profile (the bulges are
		// the recessing regions that lower the protruding fraction).
		path := make([]geom.Vec3, 0, opts.PathPoints)
		radii := make([]float64, 0, opts.PathPoints)
		p, d := s.start, s.dir
		step := segLen / float64(opts.PathPoints-1)
		for j := 0; j < opts.PathPoints; j++ {
			path = append(path, p)
			bulge := 1 + 0.25*math.Sin(float64(j)*1.1+rng.Float64())
			radii = append(radii, s.r*bulge)
			d = d.Add(randomUnit(rng).Mul(0.25)).Normalize()
			next := clampInto(p.Add(d.Mul(step)), cell, s.r*2)
			if next.Dist(p) < 0.2*step {
				break // clamped into a corner: stop the branch early
			}
			p = next
		}
		if len(path) < 2 {
			continue
		}
		branches = append(branches, branch{path: path, radii: radii})

		if bifurcationsLeft > 0 && s.depth < 6 {
			bifurcationsLeft--
			for c := 0; c < 2; c++ {
				nd := d.Add(randomUnit(rng).Mul(0.6)).Normalize()
				childR := s.r * 0.75
				// Offset the child start past the parent cap so the closed
				// tubes stay disjoint.
				gap := radii[len(radii)-1] + childR
				queue = append(queue, stub{
					start: clampInto(p.Add(nd.Mul(gap*1.2)), cell, childR*2),
					dir:   nd,
					r:     childR,
					depth: s.depth + 1,
				})
			}
		}
	}

	return branches
}

func clampInto(p geom.Vec3, b geom.Box3, margin float64) geom.Vec3 {
	shrunk := b.Expand(-margin)
	if shrunk.IsEmpty() {
		return b.Center()
	}
	return shrunk.ClosestPoint(p)
}

// appendMesh concatenates src into dst as an independent component.
func appendMesh(dst, src *mesh.Mesh) {
	off := int32(len(dst.Vertices))
	dst.Vertices = append(dst.Vertices, src.Vertices...)
	for _, f := range src.Faces {
		dst.Faces = append(dst.Faces, mesh.Face{f[0] + off, f[1] + off, f[2] + off})
	}
}
