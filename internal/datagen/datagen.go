// Package datagen generates the synthetic stand-ins for the paper's two 3D
// pathology datasets (§6.2):
//
//   - nuclei: vast numbers of small, regular, quasi-convex objects (noisy
//     ellipsoids of ≈320 faces; the paper's average is 300) of which ≈99 %
//     of vertices are protruding;
//   - vessels: fewer, large, bifurcated objects (tube trees with a
//     configurable face budget and, by default, the paper's 5 bifurcations)
//     with recessing regions at radius bulges, giving a lower protruding
//     fraction.
//
// Objects within one dataset never intersect (guaranteed by grid placement
// with bounded object radius), matching the paper's datasets. A second
// nuclei dataset can be derived with a spatial offset and fresh noise to
// emulate the output of an alternative segmentation algorithm, which makes
// the two datasets intersect heavily — the paper's intersection-join
// workload.
//
// All generation is deterministic in the seed.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// NucleiOptions configures nuclei generation.
type NucleiOptions struct {
	// Count is the number of nuclei.
	Count int
	// Space is the box the dataset must fit inside.
	Space geom.Box3
	// SubdivisionLevel controls the face count: level 2 → 320 faces per
	// nucleus (the paper's regime). Defaults to 2.
	SubdivisionLevel int
	// NoiseAmplitude is the relative radial noise (default 0.015, which
	// keeps ≈99 % of vertices protruding as in the paper's profile).
	NoiseAmplitude float64
	// Offset displaces every nucleus, used to derive the "second
	// segmentation" dataset that intersects the first.
	Offset geom.Vec3
	// Seed drives all randomness.
	Seed int64
}

func (o *NucleiOptions) setDefaults() {
	if o.Count <= 0 {
		o.Count = 100
	}
	if o.Space.IsEmpty() || o.Space.Volume() <= 0 {
		o.Space = geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(100, 100, 100)}
	}
	if o.SubdivisionLevel <= 0 {
		o.SubdivisionLevel = 2
	}
	if o.NoiseAmplitude <= 0 {
		o.NoiseAmplitude = 0.015
	}
}

// Nuclei generates Count nuclei on a jittered grid inside Space. Objects in
// the returned slice never intersect one another.
func Nuclei(opts NucleiOptions) []*mesh.Mesh {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	cells := gridCells(opts.Space, opts.Count)
	out := make([]*mesh.Mesh, 0, opts.Count)
	for i := 0; i < opts.Count; i++ {
		cell := cells[i]
		// Radius bounded by 0.3 × the smallest cell edge so that even with
		// the jitter below, neighbors cannot touch.
		s := cell.Size()
		maxR := 0.3 * math.Min(s.X, math.Min(s.Y, s.Z))
		r := maxR * (0.6 + 0.4*rng.Float64())

		m := noisyEllipsoid(rng, r, opts.SubdivisionLevel, opts.NoiseAmplitude)
		jitter := geom.V(
			(rng.Float64()-0.5)*(s.X-2*maxR)*0.5,
			(rng.Float64()-0.5)*(s.Y-2*maxR)*0.5,
			(rng.Float64()-0.5)*(s.Z-2*maxR)*0.5,
		)
		m.Translate(cell.Center().Add(jitter).Add(opts.Offset))
		out = append(out, m)
	}
	return out
}

// NucleiPair generates two mutually interior-disjoint nuclei datasets by
// splitting one grid generation into alternating cells. Distance queries
// (within, nearest neighbor) require datasets whose objects' interiors
// never overlap — the precondition the paper's tissue datasets satisfy and
// on which the PPVP distance property relies; this pair provides it.
func NucleiPair(opts NucleiOptions) (first, second []*mesh.Mesh) {
	opts.setDefaults()
	opts.Count *= 2
	all := Nuclei(opts)
	for i, m := range all {
		if i%2 == 0 {
			first = append(first, m)
		} else {
			second = append(second, m)
		}
	}
	return first, second
}

// noisyEllipsoid builds one nucleus: an ellipsoid with smooth low-frequency
// radial noise.
func noisyEllipsoid(rng *rand.Rand, r float64, level int, amp float64) *mesh.Mesh {
	// Mild anisotropy.
	ax := r * (0.85 + 0.3*rng.Float64())
	ay := r * (0.85 + 0.3*rng.Float64())
	az := r * (0.85 + 0.3*rng.Float64())

	// Smooth directional noise: a few random cosine lobes.
	type lobe struct {
		dir   geom.Vec3
		freq  float64
		phase float64
		amp   float64
	}
	lobes := make([]lobe, 3)
	for i := range lobes {
		lobes[i] = lobe{
			dir:   randomUnit(rng),
			freq:  2 + 3*rng.Float64(),
			phase: rng.Float64() * 2 * math.Pi,
			amp:   amp * (0.5 + rng.Float64()),
		}
	}

	m := mesh.Icosphere(1, level)
	for i, v := range m.Vertices {
		f := 1.0
		for _, l := range lobes {
			f += l.amp * math.Cos(l.freq*v.Dot(l.dir)+l.phase)
		}
		m.Vertices[i] = geom.V(v.X*ax*f, v.Y*ay*f, v.Z*az*f)
	}
	return m
}

func randomUnit(rng *rand.Rand) geom.Vec3 {
	for {
		v := geom.V(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1)
		if l := v.Len(); l > 1e-3 && l <= 1 {
			return v.Mul(1 / l)
		}
	}
}

// gridCells returns at least n cell boxes tiling the space.
func gridCells(space geom.Box3, n int) []geom.Box3 {
	k := int(math.Ceil(math.Cbrt(float64(n))))
	size := space.Size()
	dx, dy, dz := size.X/float64(k), size.Y/float64(k), size.Z/float64(k)
	cells := make([]geom.Box3, 0, k*k*k)
	for z := 0; z < k && len(cells) < n; z++ {
		for y := 0; y < k && len(cells) < n; y++ {
			for x := 0; x < k && len(cells) < n; x++ {
				min := space.Min.Add(geom.V(float64(x)*dx, float64(y)*dy, float64(z)*dz))
				cells = append(cells, geom.Box3{Min: min, Max: min.Add(geom.V(dx, dy, dz))})
			}
		}
	}
	return cells
}
