package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

var (
	srvOnce sync.Once
	srv     *httptest.Server
	srvErr  error
)

// testServer spins up one shared server with two small datasets.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srvOnce.Do(func() {
		eng := core.NewEngine(core.EngineOptions{Workers: 2})
		comp := ppvp.DefaultOptions()
		comp.Rounds = 6
		dopts := core.DatasetOptions{Compression: comp, Cuboids: 8}

		space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(60, 60, 60)}
		ma, mb := datagen.NucleiPair(datagen.NucleiOptions{Count: 8, SubdivisionLevel: 1, Seed: 51, Space: space})
		var a, b *core.Dataset
		a, srvErr = eng.BuildDataset("alpha", ma, dopts)
		if srvErr != nil {
			return
		}
		b, srvErr = eng.BuildDataset("beta", mb, dopts)
		if srvErr != nil {
			return
		}
		s := New(eng)
		s.AddDataset(a)
		s.AddDataset(b)
		srv = httptest.NewServer(s.Handler())
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response of %s: %v", url, err)
		}
	}
	return resp
}

func TestListAndGetDatasets(t *testing.T) {
	ts := testServer(t)
	var list []map[string]any
	if resp := getJSON(t, ts.URL+"/datasets", &list); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(list) != 2 {
		t.Fatalf("datasets = %d", len(list))
	}
	if list[0]["name"] != "alpha" || list[1]["name"] != "beta" {
		t.Errorf("names: %v", list)
	}

	var one map[string]any
	if resp := getJSON(t, ts.URL+"/datasets/alpha", &one); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if one["objects"].(float64) != 8 {
		t.Errorf("objects = %v", one["objects"])
	}

	if resp := getJSON(t, ts.URL+"/datasets/nope", nil); resp.StatusCode != 404 {
		t.Errorf("missing dataset: status %d", resp.StatusCode)
	}
}

func TestGetObjectFormats(t *testing.T) {
	ts := testServer(t)

	var obj struct {
		LOD      int          `json:"lod"`
		Vertices [][3]float64 `json:"vertices"`
		Faces    [][3]int32   `json:"faces"`
		Volume   float64      `json:"volume"`
	}
	if resp := getJSON(t, ts.URL+"/datasets/alpha/objects/0?lod=0", &obj); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if obj.LOD != 0 || len(obj.Vertices) == 0 || len(obj.Faces) == 0 || obj.Volume <= 0 {
		t.Errorf("json object: %+v", obj)
	}

	// OFF and PLY round-trip through the mesh parsers.
	resp, err := http.Get(ts.URL + "/datasets/alpha/objects/0?format=off")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if m, err := mesh.ReadOFF(&buf); err != nil || m.NumFaces() == 0 {
		t.Fatalf("OFF endpoint: %v", err)
	}
	resp, err = http.Get(ts.URL + "/datasets/alpha/objects/0?format=ply")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if m, err := mesh.ReadPLY(&buf); err != nil || m.NumFaces() == 0 {
		t.Fatalf("PLY endpoint: %v", err)
	}

	// Errors.
	if resp := getJSON(t, ts.URL+"/datasets/alpha/objects/999", nil); resp.StatusCode != 404 {
		t.Errorf("oob object: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/datasets/alpha/objects/0?lod=99", nil); resp.StatusCode != 400 {
		t.Errorf("oob lod: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/datasets/alpha/objects/0?format=stl", nil); resp.StatusCode != 400 {
		t.Errorf("bad format: %d", resp.StatusCode)
	}
}

func TestQueryEndpoints(t *testing.T) {
	ts := testServer(t)

	var nn struct {
		Neighbors []core.Neighbor `json:"neighbors"`
		Stats     map[string]any  `json:"stats"`
	}
	resp := postJSON(t, ts.URL+"/query/nn",
		`{"target":"alpha","source":"beta","paradigm":"fpr","accel":"aabb"}`, &nn)
	if resp.StatusCode != 200 {
		t.Fatalf("nn status %d", resp.StatusCode)
	}
	if len(nn.Neighbors) != 8 {
		t.Fatalf("neighbors = %d", len(nn.Neighbors))
	}
	for _, n := range nn.Neighbors {
		if n.Dist <= 0 {
			t.Errorf("neighbor dist %v", n.Dist)
		}
	}
	if nn.Stats["results"].(float64) != 8 {
		t.Errorf("stats: %v", nn.Stats)
	}

	var within struct {
		Pairs []core.Pair `json:"pairs"`
	}
	resp = postJSON(t, ts.URL+"/query/within",
		`{"target":"alpha","source":"beta","dist":25}`, &within)
	if resp.StatusCode != 200 {
		t.Fatalf("within status %d", resp.StatusCode)
	}
	if len(within.Pairs) == 0 {
		t.Error("no within pairs at dist 25")
	}

	var isect struct {
		Pairs []core.Pair `json:"pairs"`
	}
	resp = postJSON(t, ts.URL+"/query/intersect",
		`{"target":"alpha","source":"beta","accel":"brute"}`, &isect)
	if resp.StatusCode != 200 {
		t.Fatalf("intersect status %d", resp.StatusCode)
	}
	// Disjoint pair: no intersections expected.
	if len(isect.Pairs) != 0 {
		t.Errorf("unexpected intersections: %v", isect.Pairs)
	}
}

func TestRangeAndPointEndpoints(t *testing.T) {
	ts := testServer(t)

	var rangeOut struct {
		Objects []int64 `json:"objects"`
	}
	resp := postJSON(t, ts.URL+"/query/range",
		`{"dataset":"alpha","min":[0,0,0],"max":[60,60,60]}`, &rangeOut)
	if resp.StatusCode != 200 {
		t.Fatalf("range status %d", resp.StatusCode)
	}
	if len(rangeOut.Objects) != 8 {
		t.Errorf("whole-space range returned %d of 8", len(rangeOut.Objects))
	}

	// Point at an object's centroid.
	var obj struct {
		Vertices [][3]float64 `json:"vertices"`
	}
	getJSON(t, ts.URL+"/datasets/alpha/objects/0", &obj)
	var cx, cy, cz float64
	for _, v := range obj.Vertices {
		cx += v[0]
		cy += v[1]
		cz += v[2]
	}
	n := float64(len(obj.Vertices))
	var pointOut struct {
		Objects []int64 `json:"objects"`
	}
	body := fmt.Sprintf(`{"dataset":"alpha","point":[%g,%g,%g]}`, cx/n, cy/n, cz/n)
	resp = postJSON(t, ts.URL+"/query/point", body, &pointOut)
	if resp.StatusCode != 200 {
		t.Fatalf("point status %d", resp.StatusCode)
	}
	if len(pointOut.Objects) != 1 || pointOut.Objects[0] != 0 {
		t.Errorf("point lookup: %v", pointOut.Objects)
	}
}

// TestSchedOptionAndStats: the sched request option selects the LOD
// scheduler, both spellings answer identically, and the response stats
// carry the margin counters.
func TestSchedOptionAndStats(t *testing.T) {
	ts := testServer(t)

	type out struct {
		Pairs []core.Pair    `json:"pairs"`
		Stats map[string]any `json:"stats"`
	}
	var static, margin out
	resp := postJSON(t, ts.URL+"/query/within",
		`{"target":"alpha","source":"beta","dist":25,"paradigm":"fpr","sched":"static"}`, &static)
	if resp.StatusCode != 200 {
		t.Fatalf("static status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/query/within",
		`{"target":"alpha","source":"beta","dist":25,"paradigm":"fpr","sched":"margin"}`, &margin)
	if resp.StatusCode != 200 {
		t.Fatalf("margin status %d", resp.StatusCode)
	}
	if fmt.Sprint(margin.Pairs) != fmt.Sprint(static.Pairs) {
		t.Errorf("margin pairs %v != static pairs %v", margin.Pairs, static.Pairs)
	}
	for _, key := range []string{"lods_skipped_by_margin", "bounds_decisive"} {
		if _, ok := margin.Stats[key]; !ok {
			t.Errorf("stats missing %q: %v", key, margin.Stats)
		}
	}
	if static.Stats["lods_skipped_by_margin"].(float64) != 0 {
		t.Errorf("static run reported margin skips: %v", static.Stats)
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		url, body string
		status    int
	}{
		{"/query/nn", `{"target":"nope","source":"beta"}`, 404},
		{"/query/nn", `{"target":"alpha","source":"nope"}`, 404},
		{"/query/nn", `not json`, 400},
		{"/query/nn", `{"target":"alpha","source":"beta","paradigm":"magic"}`, 400},
		{"/query/nn", `{"target":"alpha","source":"beta","accel":"quantum"}`, 400},
		{"/query/nn", `{"target":"alpha","source":"beta","sched":"psychic"}`, 400},
		{"/query/within", `{"target":"alpha","source":"beta"}`, 400}, // no dist
		{"/query/range", `{"dataset":"alpha","min":[5,5,5],"max":[1,1,1]}`, 400},
		{"/query/range", `{"dataset":"nope","min":[0,0,0],"max":[1,1,1]}`, 404},
		{"/query/point", `{"dataset":"nope","point":[0,0,0]}`, 404},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+c.url, c.body, nil)
		if resp.StatusCode != c.status {
			t.Errorf("%s %s: status %d, want %d", c.url, c.body, resp.StatusCode, c.status)
		}
	}
}
