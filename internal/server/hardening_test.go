package server

import (
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/ppvp"
)

// newHardenedServer builds a dedicated server (own engine, cache disabled
// so fault-injected decodes always fire) with two tiny datasets.
func newHardenedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	eng := core.NewEngine(core.EngineOptions{CacheBytes: -1, Workers: 2})
	t.Cleanup(eng.Close)
	comp := ppvp.DefaultOptions()
	comp.Rounds = 6
	dopts := core.DatasetOptions{Compression: comp, Cuboids: 8}
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(60, 60, 60)}
	ma, mb := datagen.NucleiPair(datagen.NucleiOptions{Count: 6, SubdivisionLevel: 1, Seed: 61, Space: space})
	a, err := eng.BuildDataset("alpha", ma, dopts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.BuildDataset("beta", mb, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s := NewWithConfig(eng, cfg)
	s.AddDataset(a)
	s.AddDataset(b)
	return s
}

const knnBody = `{"target":"alpha","source":"beta","accel":"aabb"}`

// TestPanicInDecodeWorkerReturns500AndServerSurvives injects a panic into a
// decode worker mid-join: that request must get a 500 while the process —
// and the very next request — keep working.
func TestPanicInDecodeWorkerReturns500AndServerSurvives(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newHardenedServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Panic: "geometry exploded", Times: 1})
	resp, err := http.Post(ts.URL+"/query/nn", "application/json", strings.NewReader(knnBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status with injected panic = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Errorf("error body does not mention the panic: %s", body)
	}

	// The fault is spent; the same server must answer the next request.
	resp, err = http.Post(ts.URL+"/query/nn", "application/json", strings.NewReader(knnBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after recovered panic = %d", resp.StatusCode)
	}
}

// TestHandlerPanicRecovered drives the recovery middleware directly with a
// panicking handler.
func TestHandlerPanicRecovered(t *testing.T) {
	s := newHardenedServer(t, Config{})
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
}

// TestQueryTimeoutReturns504 sets a short per-query deadline and slows every
// decode down; the query must come back as a timeout, promptly.
func TestQueryTimeoutReturns504(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newHardenedServer(t, Config{QueryTimeout: 25 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Delay: 10 * time.Millisecond})
	t0 := time.Now()
	resp, err := http.Post(ts.URL+"/query/nn", "application/json", strings.NewReader(knnBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("timed-out query took %v", elapsed)
	}
}

// TestAdmissionControlSheds503 fills the single admission slot with a query
// blocked inside the engine, then checks the next query is shed with 503 +
// Retry-After while non-query endpoints stay available.
func TestAdmissionControlSheds503(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newHardenedServer(t, Config{MaxInFlight: 1, QueryTimeout: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Hook: func() error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	}})

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query/nn", "application/json", strings.NewReader(knnBody))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first query never reached the engine")
	}

	// Slot taken: the next query must be shed immediately.
	resp, err := http.Post(ts.URL+"/query/nn", "application/json", strings.NewReader(knnBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// Non-query endpoints are not subject to admission control.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz during saturation: %d", hresp.StatusCode)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first (admitted) query status = %d", code)
	}

	// Slot free again.
	resp, err = http.Post(ts.URL+"/query/nn", "application/json", strings.NewReader(knnBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after release = %d", resp.StatusCode)
	}
}

// TestBodyLimitReturns413 caps request bodies and sends an oversized one.
func TestBodyLimitReturns413(t *testing.T) {
	s := newHardenedServer(t, Config{MaxBodyBytes: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"target":"alpha","source":"beta","lods":[` + strings.Repeat("0,", 200) + `0]}`
	resp, err := http.Post(ts.URL+"/query/nn", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestHealthAndReadiness covers /healthz, /readyz, and the ready flip.
func TestHealthAndReadiness(t *testing.T) {
	s := newHardenedServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	s.SetReady(false)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d", code)
	}
	s.SetReady(true)

	// A server with no datasets is alive but not ready.
	empty := NewWithConfig(core.NewEngine(core.EngineOptions{}), Config{Logger: log.New(io.Discard, "", 0)})
	tse := httptest.NewServer(empty.Handler())
	defer tse.Close()
	resp, err := http.Get(tse.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty readyz = %d", resp.StatusCode)
	}
}

// TestGracefulShutdownOnSIGTERM runs the real Serve loop wired to a signal
// context (as main is), sends this process SIGTERM while a query is blocked
// inside the engine, and asserts the in-flight query completes with 200 and
// Serve returns nil — the binary would exit 0.
func TestGracefulShutdownOnSIGTERM(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newHardenedServer(t, Config{QueryTimeout: -1, ShutdownGrace: 10 * time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Hook: func() error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	}})

	queryDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/query/nn", "application/json", strings.NewReader(knnBody))
		if err != nil {
			queryDone <- -1
			return
		}
		resp.Body.Close()
		queryDone <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the engine")
	}

	// Deliver a real SIGTERM to this process; the notify context catches it.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Draining has begun; let the in-flight query finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after SIGTERM")
	}
	if code := <-queryDone; code != http.StatusOK {
		t.Fatalf("in-flight query during drain = %d, want 200", code)
	}
	if s.ready.Load() {
		t.Error("server still ready after drain")
	}
}

// TestWriteJSONEncodeFailure checks an unencodable value becomes a logged
// 500, not a silent half-written 200.
func TestWriteJSONEncodeFailure(t *testing.T) {
	s := newHardenedServer(t, Config{})
	rec := httptest.NewRecorder()
	s.writeJSON(rec, map[string]any{"bad": func() {}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
}
