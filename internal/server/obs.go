package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

// queryLogCapacity bounds the /debug/queries ring buffer.
const queryLogCapacity = 256

// serverObs bundles the server's observability state: the Prometheus
// registry behind /metrics, the per-query counters the handlers feed, and
// the /debug/queries ring buffer.
type serverObs struct {
	reg *obs.Registry

	queriesTotal  *obs.CounterVec // kind, status
	queryDuration *obs.HistogramVec
	phaseSeconds  *obs.CounterVec // phase
	decodeRounds  *obs.Histogram
	admissionRej  *obs.Counter

	queryLog *obs.QueryLog
}

// initObs builds the metric families. Engine-lifetime counters (cache,
// quarantine) are sampled at scrape time through Counter/GaugeFuncs rather
// than double-counted per query; the query families aggregate the exact
// per-query stats the engine attributes. Sharded servers trade the engine
// families for the threedpro_shard_* families sampled off the coordinator.
func (s *Server) initObs() {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg: reg,
		queriesTotal: reg.CounterVec("threedpro_queries_total",
			"Queries served, by query kind and outcome status.", "kind", "status"),
		queryDuration: reg.HistogramVec("threedpro_query_duration_seconds",
			"Query wall-clock latency by kind.", obs.DurationBuckets, "kind"),
		phaseSeconds: reg.CounterVec("threedpro_query_phase_seconds_total",
			"Cumulative per-phase CPU time across queries (filter/decode/geom).", "phase"),
		decodeRounds: reg.Histogram("threedpro_query_decode_rounds",
			"Decode rounds replayed per query.", obs.RoundBuckets),
		admissionRej: reg.Counter("threedpro_admission_rejected_total",
			"Query requests shed by admission control."),
		queryLog: obs.NewQueryLog(queryLogCapacity),
	}
	reg.GaugeFunc("threedpro_queries_inflight",
		"Query requests currently admitted.", func() float64 { return float64(len(s.inflight)) })

	if s.coord != nil {
		s.initShardObs(reg)
	}
	if s.eng == nil {
		s.obs = o
		return
	}

	cache := s.eng.Cache()
	reg.CounterFunc("threedpro_cache_hits_total",
		"Decode-cache hits.", func() float64 { return float64(cache.Stats().Hits) })
	reg.CounterFunc("threedpro_cache_misses_total",
		"Decode-cache misses.", func() float64 { return float64(cache.Stats().Misses) })
	reg.CounterFunc("threedpro_cache_evictions_total",
		"Decode-cache evictions.", func() float64 { return float64(cache.Stats().Evictions) })
	reg.CounterFunc("threedpro_cache_warm_starts_total",
		"Cache misses served by resuming a retained progressive decoder.",
		func() float64 { return float64(cache.Stats().WarmStarts) })
	reg.CounterFunc("threedpro_cache_rounds_applied_total",
		"Decode rounds actually replayed by cache misses.",
		func() float64 { return float64(cache.Stats().RoundsApplied) })
	reg.CounterFunc("threedpro_cache_rounds_skipped_total",
		"Decode rounds warm starts reused from retained decoder state.",
		func() float64 { return float64(cache.Stats().RoundsSkipped) })
	reg.CounterFunc("threedpro_cache_decode_failures_total",
		"Miss-path decodes that returned an error or panicked.",
		func() float64 { return float64(cache.Stats().DecodeFailures) })
	reg.GaugeFunc("threedpro_cache_bytes_used",
		"Estimated bytes of decoded meshes held by the cache.",
		func() float64 { return float64(cache.Stats().BytesUsed) })

	quar := s.eng.Quarantine()
	reg.GaugeFunc("threedpro_quarantine_open",
		"Objects whose circuit breaker is currently open.",
		func() float64 { return float64(quar.Stats().Open) })
	reg.GaugeFunc("threedpro_quarantine_half_open",
		"Objects currently admitting a half-open probe.",
		func() float64 { return float64(quar.Stats().HalfOpen) })
	reg.GaugeFunc("threedpro_quarantine_tracked",
		"Objects with breaker records (including closed ones).",
		func() float64 { return float64(quar.Stats().Tracked) })
	reg.CounterFunc("threedpro_quarantine_trips_total",
		"Closed-to-open breaker transitions.", func() float64 { return float64(quar.Stats().Trips) })
	reg.CounterFunc("threedpro_quarantine_failures_total",
		"Recorded per-object decode failures.", func() float64 { return float64(quar.Stats().Failures) })
	reg.CounterFunc("threedpro_quarantine_skips_total",
		"Decode requests refused because the object's breaker was open.",
		func() float64 { return float64(quar.Stats().Skips) })
	reg.CounterFunc("threedpro_quarantine_reinstated_total",
		"Successful probes that closed a breaker again.",
		func() float64 { return float64(quar.Stats().Reinstated) })

	s.obs = o
}

// initShardObs registers the threedpro_shard_* families, sampled off the
// coordinator's counters at scrape time.
func (s *Server) initShardObs(reg *obs.Registry) {
	coord := s.coord
	reg.GaugeFunc("threedpro_shards",
		"Configured shard count.", func() float64 { return float64(coord.Shards()) })
	reg.GaugeFunc("threedpro_shard_breakers_open",
		"Shards whose circuit breaker is currently open or half-open.",
		func() float64 { return float64(coord.Breaker().Len()) })
	reg.CounterFunc("threedpro_shard_queries_total",
		"Queries coordinated across the shard tier.",
		func() float64 { return float64(coord.Metrics().Queries) })
	reg.CounterFunc("threedpro_shard_degraded_queries_total",
		"Coordinated queries that lost at least one shard and returned a degraded answer.",
		func() float64 { return float64(coord.Metrics().DegradedQueries) })
	reg.CounterFunc("threedpro_shard_calls_total",
		"Transport attempts to shards (retries and hedges included).",
		func() float64 { return float64(coord.Metrics().ShardCalls) })
	reg.CounterFunc("threedpro_shard_retries_total",
		"Shard-call retries after transient transport failures.",
		func() float64 { return float64(coord.Metrics().Retries) })
	reg.CounterFunc("threedpro_shard_hedges_total",
		"Hedge attempts launched against straggling shards.",
		func() float64 { return float64(coord.Metrics().Hedges) })
	reg.CounterFunc("threedpro_shard_hedge_wins_total",
		"Hedge attempts whose response was accepted.",
		func() float64 { return float64(coord.Metrics().HedgeWins) })
	reg.CounterFunc("threedpro_shard_errors_total",
		"Shard calls that exhausted every attempt.",
		func() float64 { return float64(coord.Metrics().ShardErrors) })
	reg.CounterFunc("threedpro_shard_open_skips_total",
		"Shard calls refused outright by an open breaker.",
		func() float64 { return float64(coord.Metrics().OpenSkips) })
	reg.GaugeFunc("threedpro_shard_replicas",
		"Configured replication factor (shards per home group).",
		func() float64 { return float64(coord.Replicas()) })
	reg.CounterFunc("threedpro_shard_failover_total",
		"Replica-chain advances past a failed or breaker-open replica.",
		func() float64 { return float64(coord.Metrics().Failovers) })
	reg.CounterFunc("threedpro_shard_failover_wins_total",
		"Failovers whose replica produced the accepted answer.",
		func() float64 { return float64(coord.Metrics().FailoverWins) })
	reg.CounterFunc("threedpro_shard_prober_probes_total",
		"Active health probes issued by the background prober.",
		func() float64 { return float64(coord.Metrics().Probes) })
	reg.CounterFunc("threedpro_shard_prober_recoveries_total",
		"Prober probes whose success released a shard breaker.",
		func() float64 { return float64(coord.Metrics().ProbeRecoveries) })
	reg.CounterFunc("threedpro_shard_prober_failures_total",
		"Prober probes that failed and re-opened the breaker.",
		func() float64 { return float64(coord.Metrics().ProbeFailures) })
}

// noteQuery records one executed query (one that reached the engine) into
// the metric families and the /debug/queries ring. st is never nil: even
// aborted queries hand back their statistics.
func (s *Server) noteQuery(r *http.Request, kind string, st *core.Stats, err error) {
	status := "ok"
	errMsg := ""
	if err != nil {
		status = "error"
		errMsg = firstLine(err.Error())
	}
	s.obs.queriesTotal.With(kind, status).Inc()
	s.obs.queryDuration.With(kind).Observe(st.Elapsed.Seconds())
	s.obs.phaseSeconds.With("filter").Add(st.FilterTime.Seconds())
	s.obs.phaseSeconds.With("decode").Add(st.DecodeTime.Seconds())
	s.obs.phaseSeconds.With("geom").Add(st.GeomTime.Seconds())
	s.obs.decodeRounds.Observe(float64(st.RoundsApplied))

	s.obs.queryLog.Record(obs.QuerySummary{
		ID:             requestID(r),
		Kind:           kind,
		Start:          time.Now().Add(-st.Elapsed),
		ElapsedMS:      float64(st.Elapsed) / float64(time.Millisecond),
		Status:         status,
		Error:          errMsg,
		Candidates:     st.Candidates,
		Results:        st.Results,
		Decodes:        st.Decodes,
		CacheHits:      st.CacheHits,
		WarmStarts:     st.WarmStarts,
		DecodeFailures: st.DecodeFailures,
		Degraded:       len(st.Degraded),
		Trace:          st.Trace,
	})
}

// handleDebugQueries serves the ring buffer of recent query summaries,
// newest first.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]any{
		"total":   s.obs.queryLog.Total(),
		"queries": s.obs.queryLog.Snapshot(),
	})
}

// ridKey is the context key the request-ID middleware stores the ID under.
type ridKey struct{}

// requestID returns the request's assigned ID ("" outside the middleware).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ridKey{}).(string)
	return id
}

// newRequestID mints a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument assigns every request an ID (honoring an incoming
// X-Request-ID), echoes it on the response, and emits one structured access
// log line per request with the ID, method, path, status, and latency.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		// The shard-side copy rides outgoing worker calls (HTTP transport)
		// so one query's scatter legs correlate across process logs.
		r = r.WithContext(shard.WithRequestID(
			context.WithValue(r.Context(), ridKey{}, id), id))
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.slog.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("elapsed", time.Since(start)),
		)
	})
}

// firstLine truncates a message at its first newline (panic values carry
// stack traces).
func firstLine(msg string) string {
	for i := 0; i < len(msg); i++ {
		if msg[i] == '\n' {
			return msg[:i]
		}
	}
	return msg
}
