package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/ppvp"
	"repro/internal/quarantine"
)

// degradeServer builds a private server (its own engine, so quarantine
// trips don't leak into the shared fixture's tests).
func degradeServer(t *testing.T) (*httptest.Server, *core.Engine, *core.Dataset, *core.Dataset) {
	t.Helper()
	eng := core.NewEngine(core.EngineOptions{Workers: 2})
	t.Cleanup(eng.Close)
	comp := ppvp.DefaultOptions()
	comp.Rounds = 6
	dopts := core.DatasetOptions{Compression: comp, Cuboids: 8}

	// Two independently seeded, offset nuclei sets overlap, so the
	// intersect join has pairs (NucleiPair would be mutually disjoint).
	gen := datagen.NucleiOptions{Count: 12, SubdivisionLevel: 1, Seed: 21}
	a, err := eng.BuildDataset("alpha", datagen.Nuclei(gen), dopts)
	if err != nil {
		t.Fatal(err)
	}
	gen.Seed = 22
	gen.Offset = geom.V(2.5, 1.5, 1)
	b, err := eng.BuildDataset("beta", datagen.Nuclei(gen), dopts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)
	s.AddDataset(a)
	s.AddDataset(b)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, eng, a, b
}

func TestReadyzReportsDegraded(t *testing.T) {
	ts, eng, a, _ := degradeServer(t)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ready") {
		t.Fatalf("clean readyz = %d %q", resp.StatusCode, body)
	}

	eng.Quarantine().Trip(quarantine.Key{Dataset: a.Seq(), Object: 0}, "test trip")
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("degraded readyz status = %d, want 200 (degraded beats dead)", resp.StatusCode)
	}
	if !strings.Contains(string(body), "degraded") || !strings.Contains(string(body), "1 objects quarantined") {
		t.Fatalf("degraded readyz body = %q", body)
	}
}

func TestStatuszExposesQuarantine(t *testing.T) {
	ts, eng, a, _ := degradeServer(t)
	eng.Quarantine().Trip(quarantine.Key{Dataset: a.Seq(), Object: 3}, "flaky blob")

	var out struct {
		Ready    bool     `json:"ready"`
		Datasets []string `json:"datasets"`
		Inflight struct {
			Used int `json:"used"`
			Max  int `json:"max"`
		} `json:"inflight"`
		Cache      map[string]int64 `json:"cache"`
		Quarantine struct {
			Stats   quarantine.Stats `json:"stats"`
			Entries []struct {
				DatasetName string `json:"dataset"`
				DatasetSeq  int64  `json:"dataset_seq"`
				Object      int64  `json:"object"`
				State       string `json:"state"`
				Reason      string `json:"reason"`
			} `json:"entries"`
		} `json:"quarantine"`
	}
	if resp := getJSON(t, ts.URL+"/statusz", &out); resp.StatusCode != 200 {
		t.Fatalf("statusz status = %d", resp.StatusCode)
	}
	if !out.Ready || len(out.Datasets) != 2 {
		t.Fatalf("statusz ready/datasets = %v/%v", out.Ready, out.Datasets)
	}
	if out.Inflight.Max <= 0 {
		t.Fatalf("inflight.max = %d", out.Inflight.Max)
	}
	if _, ok := out.Cache["decode_failures"]; !ok {
		t.Fatal("cache stats missing decode_failures")
	}
	if out.Quarantine.Stats.Open != 1 || out.Quarantine.Stats.Trips != 1 {
		t.Fatalf("quarantine stats = %+v", out.Quarantine.Stats)
	}
	if len(out.Quarantine.Entries) != 1 {
		t.Fatalf("quarantine entries = %+v", out.Quarantine.Entries)
	}
	e := out.Quarantine.Entries[0]
	if e.DatasetName != "alpha" || e.Object != 3 || e.State != "open" || e.Reason != "flaky blob" {
		t.Fatalf("quarantine entry = %+v", e)
	}
}

func TestQueryOnErrorPolicies(t *testing.T) {
	ts, eng, a, b := degradeServer(t)
	// Trip a target object that provably participates in the join, so both
	// policies must confront it.
	clean, _, err := eng.IntersectJoin(t.Context(), a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("workload produced no pairs")
	}
	bad := clean[0].Target
	eng.Quarantine().Trip(quarantine.Key{Dataset: a.Seq(), Object: bad}, "test trip")

	// FailFast (the default) refuses the quarantined object.
	var errOut map[string]string
	resp := postJSON(t, ts.URL+"/query/intersect",
		`{"target":"alpha","source":"beta"}`, &errOut)
	if resp.StatusCode != 500 || !strings.Contains(errOut["error"], "quarantined") {
		t.Fatalf("fail_fast = %d %v, want 500 naming quarantine", resp.StatusCode, errOut)
	}

	// Degrade answers with the certain pairs and reports the skip.
	var out struct {
		Pairs []core.Pair `json:"pairs"`
		Stats struct {
			Degraded []struct {
				Dataset string `json:"dataset"`
				Object  int64  `json:"object"`
				Err     string `json:"error"`
			} `json:"degraded"`
			Uncertain       []core.Pair `json:"uncertain"`
			QuarantineSkips int64       `json:"quarantine_skips"`
		} `json:"stats"`
	}
	resp = postJSON(t, ts.URL+"/query/intersect",
		`{"target":"alpha","source":"beta","on_error":"degrade","error_budget":-1}`, &out)
	if resp.StatusCode != 200 {
		t.Fatalf("degrade status = %d", resp.StatusCode)
	}
	if len(out.Stats.Degraded) == 0 || out.Stats.QuarantineSkips == 0 {
		t.Fatalf("degrade stats missing failure accounting: %+v", out.Stats)
	}
	d := out.Stats.Degraded[0]
	if d.Dataset != "alpha" || d.Object != bad || !strings.Contains(d.Err, "quarantined") {
		t.Fatalf("degraded entry = %+v", d)
	}
	for _, p := range out.Pairs {
		if p.Target == bad {
			t.Fatalf("quarantined target leaked into certain pairs: %v", p)
		}
	}

	// Unknown policy is a 400.
	resp = postJSON(t, ts.URL+"/query/intersect",
		`{"target":"alpha","source":"beta","on_error":"shrug"}`, &errOut)
	if resp.StatusCode != 400 {
		t.Fatalf("bad on_error status = %d", resp.StatusCode)
	}
}
