package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/ppvp"
	"repro/internal/shard"
)

// shardedServer builds a fresh sharded server over two overlapping datasets.
// Fresh per test: the fault-injection registry and the shard breaker are
// process-global state the tests mutate.
func shardedServer(t *testing.T, opts shard.Options) (*httptest.Server, *shard.Coordinator, *core.Dataset) {
	t.Helper()
	eng := core.NewEngine(core.EngineOptions{Workers: 2})
	t.Cleanup(eng.Close)
	comp := ppvp.DefaultOptions()
	comp.Rounds = 6
	dopts := core.DatasetOptions{Compression: comp, Cuboids: 8}

	gen := datagen.NucleiOptions{Count: 12, SubdivisionLevel: 1, Seed: 61}
	a, err := eng.BuildDataset("alpha", datagen.Nuclei(gen), dopts)
	if err != nil {
		t.Fatal(err)
	}
	gen.Seed = 62
	gen.Offset = geom.V(2.5, 1.5, 1)
	b, err := eng.BuildDataset("beta", datagen.Nuclei(gen), dopts)
	if err != nil {
		t.Fatal(err)
	}

	coord := shard.NewInProcess(core.EngineOptions{Workers: 2}, opts)
	t.Cleanup(coord.Close)
	s := NewSharded(coord, Config{})
	if err := s.AddDataset(a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDataset(b); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, coord, a
}

// shardedQueryResponse is the JSON shape the sharded query tests decode.
type shardedQueryResponse struct {
	Pairs []struct {
		Target int64 `json:"target"`
		Source int64 `json:"source"`
	} `json:"pairs"`
	Stats struct {
		Results      int64   `json:"results"`
		UncertainIDs []int64 `json:"uncertain_ids"`
		Degraded     []struct {
			Dataset string `json:"dataset"`
			Object  int64  `json:"object"`
			Err     string `json:"error"`
		} `json:"degraded"`
		Shards []struct {
			Shard    int    `json:"shard"`
			Status   string `json:"status"`
			Attempts int    `json:"attempts"`
			Stats    *struct {
				Results int64 `json:"results"`
			} `json:"stats"`
		} `json:"shards"`
	} `json:"stats"`
}

// TestShardedServerQuery proves a sharded server answers the join endpoints
// and that the response stats carry the per-shard breakdown.
func TestShardedServerQuery(t *testing.T) {
	ts, _, _ := shardedServer(t, shard.Options{Shards: 4})

	var out shardedQueryResponse
	resp := postJSON(t, ts.URL+"/query/intersect", `{"target":"alpha","source":"beta"}`, &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Pairs) == 0 {
		t.Fatal("sharded intersect found no pairs; fixture too sparse")
	}
	if len(out.Stats.Shards) != 4 {
		t.Fatalf("stats.shards has %d entries, want 4", len(out.Stats.Shards))
	}
	var sum int64
	for _, ss := range out.Stats.Shards {
		if ss.Status != "ok" && ss.Status != "skipped" {
			t.Fatalf("shard %d status %q", ss.Shard, ss.Status)
		}
		if ss.Stats != nil {
			sum += ss.Stats.Results
		}
	}
	if sum != out.Stats.Results {
		t.Fatalf("Σ per-shard results = %d, coordinator total = %d", sum, out.Stats.Results)
	}
}

// TestShardedServerDeadShardDegrades is the acceptance scenario: one shard
// killed at the transport, the query still returns HTTP 200 with a certain
// answer and the dead shard's home objects listed in uncertain_ids.
func TestShardedServerDeadShardDegrades(t *testing.T) {
	const dead = 1
	ts, _, a := shardedServer(t, shard.Options{Shards: 4, Retries: 1, RetryBackoff: -1})

	// Clean run first, for the expected certain answer.
	var clean shardedQueryResponse
	if resp := postJSON(t, ts.URL+"/query/intersect", `{"target":"alpha","source":"beta"}`, &clean); resp.StatusCode != 200 {
		t.Fatalf("clean status %d", resp.StatusCode)
	}

	faultinject.Arm(fmt.Sprintf("%s.%d", faultinject.PointShardSend, dead),
		faultinject.Fault{Err: faultinject.ErrInjected})
	defer faultinject.Reset()

	// Fail-fast: the lost shard is a backend failure, 502.
	if resp := postJSON(t, ts.URL+"/query/intersect", `{"target":"alpha","source":"beta"}`, nil); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("fail-fast status %d, want 502", resp.StatusCode)
	}

	// Degrade: 200, certain answer = clean answer minus the dead shard's
	// home targets, which show up in uncertain_ids instead.
	var out shardedQueryResponse
	if resp := postJSON(t, ts.URL+"/query/intersect", `{"target":"alpha","source":"beta","on_error":"degrade"}`, &out); resp.StatusCode != 200 {
		t.Fatalf("degrade status %d, want 200", resp.StatusCode)
	}
	deadHome := make(map[int64]bool)
	for _, o := range a.Tileset.Objects {
		if o != nil && o.Cuboid%4 == dead {
			deadHome[o.ID] = true
		}
	}
	if len(deadHome) == 0 {
		t.Fatal("no objects homed on the dead shard; fixture too sparse")
	}
	for _, p := range out.Pairs {
		if deadHome[p.Target] {
			t.Fatalf("pair with dead-shard target %d reported as certain", p.Target)
		}
	}
	want := 0
	for _, p := range clean.Pairs {
		if !deadHome[p.Target] {
			want++
		}
	}
	if len(out.Pairs) != want {
		t.Fatalf("degraded answer has %d pairs, want %d (clean minus dead-shard targets)", len(out.Pairs), want)
	}
	uncertain := make(map[int64]bool, len(out.Stats.UncertainIDs))
	for _, id := range out.Stats.UncertainIDs {
		uncertain[id] = true
	}
	for id := range deadHome {
		if !uncertain[id] {
			t.Fatalf("dead shard's object %d missing from uncertain_ids", id)
		}
	}
	if len(out.Stats.Degraded) == 0 {
		t.Fatal("degraded list empty; the shard loss should be recorded")
	}
	errorShards := 0
	for _, ss := range out.Stats.Shards {
		if ss.Status == "error" {
			errorShards++
			if ss.Shard != dead {
				t.Fatalf("shard %d reported error, only %d is dead", ss.Shard, dead)
			}
			if ss.Attempts != 2 {
				t.Fatalf("dead shard made %d attempts, want 2 (1 + 1 retry)", ss.Attempts)
			}
		}
	}
	if errorShards != 1 {
		t.Fatalf("%d shards in error, want 1", errorShards)
	}
}

// TestShardedServerHealthEndpoints checks /readyz flips to the degraded
// body when a shard breaker opens, /statusz carries the shard section, and
// /metrics exports the threedpro_shard_* families.
func TestShardedServerHealthEndpoints(t *testing.T) {
	ts, coord, _ := shardedServer(t, shard.Options{
		Shards: 3, Retries: -1, BreakerThreshold: 1, BreakerCooldown: time.Hour,
	})

	body := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, text := body("/readyz"); code != 200 || !strings.Contains(text, "ready") {
		t.Fatalf("fresh readyz: %d %q", code, text)
	}

	var status struct {
		Shards struct {
			Count    int  `json:"count"`
			Replicas int  `json:"replicas"`
			Degraded bool `json:"degraded"`
			Health   []struct {
				Shard int    `json:"shard"`
				State string `json:"state"`
			} `json:"health"`
			Metrics map[string]any `json:"metrics"`
		} `json:"shards"`
	}
	if resp := getJSON(t, ts.URL+"/statusz", &status); resp.StatusCode != 200 {
		t.Fatalf("statusz status %d", resp.StatusCode)
	}
	if status.Shards.Count != 3 || len(status.Shards.Health) != 3 || status.Shards.Degraded {
		t.Fatalf("fresh statusz shards = %+v", status.Shards)
	}
	if status.Shards.Replicas != 1 {
		t.Fatalf("statusz replicas = %d, want 1", status.Shards.Replicas)
	}
	for _, key := range []string{"failovers", "failover_wins", "probes", "probe_recoveries", "probe_failures"} {
		if _, ok := status.Shards.Metrics[key]; !ok {
			t.Errorf("statusz shard metrics missing %q: %v", key, status.Shards.Metrics)
		}
	}

	// Kill shard 0 and trip its breaker with one degrade query.
	faultinject.Arm(faultinject.PointShardSend+".0", faultinject.Fault{Err: faultinject.ErrInjected})
	defer faultinject.Reset()
	if resp := postJSON(t, ts.URL+"/query/intersect", `{"target":"alpha","source":"beta","on_error":"degrade"}`, nil); resp.StatusCode != 200 {
		t.Fatalf("tripping query status %d", resp.StatusCode)
	}
	if !coord.Degraded() {
		t.Fatal("breaker did not open after the shard died")
	}

	if code, text := body("/readyz"); code != 200 || !strings.Contains(text, "degraded") || !strings.Contains(text, "shard breakers open") {
		t.Fatalf("degraded readyz: %d %q (want 200 + degraded body)", code, text)
	}
	if resp := getJSON(t, ts.URL+"/statusz", &status); resp.StatusCode != 200 {
		t.Fatalf("statusz status %d", resp.StatusCode)
	}
	if !status.Shards.Degraded {
		t.Fatal("statusz does not report the shard tier degraded")
	}
	open := 0
	for _, h := range status.Shards.Health {
		if h.State != "closed" {
			open++
			if h.Shard != 0 {
				t.Fatalf("shard %d state %q, only 0 was killed", h.Shard, h.State)
			}
		}
	}
	if open != 1 {
		t.Fatalf("%d shards non-closed, want 1", open)
	}

	code, metrics := body("/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, family := range []string{
		"threedpro_shards 3",
		"threedpro_shard_breakers_open 1",
		"threedpro_shard_queries_total",
		"threedpro_shard_degraded_queries_total 1",
		"threedpro_shard_calls_total",
		"threedpro_shard_retries_total",
		"threedpro_shard_hedges_total",
		"threedpro_shard_hedge_wins_total",
		"threedpro_shard_errors_total 1",
		"threedpro_shard_open_skips_total",
		"threedpro_shard_replicas 1",
		"threedpro_shard_failover_total",
		"threedpro_shard_failover_wins_total",
		"threedpro_shard_prober_probes_total",
		"threedpro_shard_prober_recoveries_total",
		"threedpro_shard_prober_failures_total",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}
