// Package server exposes the 3DPro engine over HTTP with a small JSON API,
// making the library usable as the standalone query system the paper
// describes. Query handlers honor request contexts, so abandoned HTTP
// requests cancel the underlying join.
//
//	GET  /datasets                     list loaded datasets
//	GET  /datasets/{name}              one dataset's metadata
//	GET  /datasets/{name}/objects/{id} decoded mesh (?lod=K&format=json|off|ply)
//	POST /query/intersect              {"target","source","paradigm","accel"}
//	POST /query/within                 + "dist"
//	POST /query/nn                     + "k"
//	POST /query/range                  {"dataset","min":[x,y,z],"max":[x,y,z]}
//	POST /query/point                  {"dataset","point":[x,y,z]}
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Server serves queries against a set of named datasets, either directly on
// one engine or — when built with NewSharded — through a sharded
// coordinator that scatter-gathers over per-shard engines.
type Server struct {
	eng   *core.Engine       // nil in sharded mode
	coord *shard.Coordinator // nil in single-engine mode
	cfg   Config
	log   *log.Logger
	slog  *slog.Logger

	// inflight is the admission-control semaphore for query endpoints.
	inflight chan struct{}
	// ready gates /readyz; it flips to false when shutdown begins.
	ready atomic.Bool

	// obs holds the /metrics registry and the /debug/queries ring.
	obs *serverObs

	mu       sync.RWMutex
	datasets map[string]*core.Dataset
}

// New returns a server bound to the engine with the default Config.
func New(eng *core.Engine) *Server { return NewWithConfig(eng, Config{}) }

// NewWithConfig returns a server bound to the engine with explicit limits.
func NewWithConfig(eng *core.Engine, cfg Config) *Server {
	return newServer(eng, nil, cfg)
}

// NewSharded returns a server that routes every query through the sharded
// coordinator instead of a single engine. Datasets added via AddDataset are
// placed across the coordinator's shards; /readyz and /statusz report
// per-shard health and /metrics gains the threedpro_shard_* families.
func NewSharded(coord *shard.Coordinator, cfg Config) *Server {
	return newServer(nil, coord, cfg)
}

func newServer(eng *core.Engine, coord *shard.Coordinator, cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		eng:      eng,
		coord:    coord,
		cfg:      cfg,
		log:      cfg.Logger,
		slog:     cfg.Slog,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		datasets: make(map[string]*core.Dataset),
	}
	s.ready.Store(true)
	s.initObs()
	return s
}

// AddDataset registers a dataset under its name. In sharded mode it also
// places the dataset's objects across the coordinator's shards; placement
// failure leaves the dataset unregistered.
func (s *Server) AddDataset(d *core.Dataset) error {
	if s.coord != nil {
		if err := s.coord.AddDataset(d); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.datasets[d.Name] = d
	s.mu.Unlock()
	return nil
}

func (s *Server) dataset(name string) (*core.Dataset, bool) {
	s.mu.RLock()
	d, ok := s.datasets[name]
	s.mu.RUnlock()
	return d, ok
}

// Handler returns the HTTP handler: the API routes wrapped in the
// request-ID/access-log, panic-recovery and body-limit middleware, with the
// query endpoints additionally behind admission control and per-query
// deadlines. /metrics serves the Prometheus registry and /debug/queries the
// recent-query ring; the pprof endpoints mount only when Config.EnablePprof
// is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.Handle("GET /metrics", s.obs.reg.Handler())
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	mux.HandleFunc("GET /datasets", s.handleListDatasets)
	mux.HandleFunc("GET /datasets/{name}", s.handleDataset)
	mux.HandleFunc("GET /datasets/{name}/objects/{id}", s.handleObject)
	mux.Handle("POST /query/intersect", s.query(s.handleIntersect))
	mux.Handle("POST /query/within", s.query(s.handleWithin))
	mux.Handle("POST /query/nn", s.query(s.handleNN))
	mux.Handle("POST /query/range", s.query(s.handleRange))
	mux.Handle("POST /query/point", s.query(s.handlePoint))
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(s.recoverPanics(s.limitBody(mux)))
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *httpError {
	return &httpError{code: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// writeJSON encodes v into a buffer first so an encoding failure can still
// become a 500 instead of a silently truncated 200.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("server: encoding response: %v", err)
		writeErrStatus(w, http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.log.Printf("server: writing response: %v", err)
	}
}

// statusClientClosedRequest is the nginx convention for "client went away
// before the response was ready"; no standard code fits.
const statusClientClosedRequest = 499

// writeErr maps err onto an HTTP status. Internal errors (500) are logged
// in full — tagged with the request's ID so the log line joins up with the
// access log — but only their first line is sent to the client, so a worker
// panic's stack trace lands in the log rather than the response body.
func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.As(err, &mbe):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = statusClientClosedRequest
	case errors.Is(err, shard.ErrUnknownDataset):
		code = http.StatusNotFound
	case errors.Is(err, shard.ErrAllShardsFailed), errors.Is(err, shard.ErrShardFailed):
		// The backend, not the request, failed: a fail-fast query lost a
		// shard (or a degrade query lost all of them).
		code = http.StatusBadGateway
	}
	msg := err.Error()
	if code == http.StatusInternalServerError {
		s.log.Printf("server: internal error (request %s): %v", requestID(r), err)
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i]
		}
	}
	writeErrStatus(w, code, msg)
}

func writeErrStatus(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// decodeBody decodes the JSON request body, mapping an exceeded body limit
// to 413 and malformed JSON to 400.
func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{code: http.StatusRequestEntityTooLarge, msg: mbe.Error()}
		}
		return badRequest("invalid JSON body: %v", err)
	}
	return nil
}

// datasetInfo is the JSON shape of one dataset.
type datasetInfo struct {
	Name            string     `json:"name"`
	Objects         int        `json:"objects"`
	MaxLOD          int        `json:"max_lod"`
	CompressedBytes int64      `json:"compressed_bytes"`
	Bounds          [6]float64 `json:"bounds"` // minx,miny,minz,maxx,maxy,maxz
}

func info(d *core.Dataset) datasetInfo {
	b := d.Tree().Bounds()
	return datasetInfo{
		Name:            d.Name,
		Objects:         d.Len(),
		MaxLOD:          d.MaxLOD(),
		CompressedBytes: d.CompressedBytes(),
		Bounds:          [6]float64{b.Min.X, b.Min.Y, b.Min.Z, b.Max.X, b.Max.Y, b.Max.Z},
	}
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]datasetInfo, 0, len(names))
	for _, n := range names {
		if d, ok := s.dataset(n); ok {
			out = append(out, info(d))
		}
	}
	s.writeJSON(w, out)
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("name"))
	if !ok {
		s.writeErr(w, r, notFound("dataset %q not loaded", r.PathValue("name")))
		return
	}
	s.writeJSON(w, info(d))
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("name"))
	if !ok {
		s.writeErr(w, r, notFound("dataset %q not loaded", r.PathValue("name")))
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeErr(w, r, notFound("object %q not in dataset", r.PathValue("id")))
		return
	}
	obj := d.Tileset.Object(id)
	if obj == nil {
		s.writeErr(w, r, notFound("object %q not in dataset", r.PathValue("id")))
		return
	}
	comp := obj.Comp
	lod := comp.MaxLOD()
	if ls := r.URL.Query().Get("lod"); ls != "" {
		l, err := strconv.Atoi(ls)
		if err != nil || l < 0 || l > comp.MaxLOD() {
			s.writeErr(w, r, badRequest("lod must be in [0,%d]", comp.MaxLOD()))
			return
		}
		lod = l
	}
	m, err := comp.Decode(lod)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "off":
		w.Header().Set("Content-Type", "text/plain")
		m.WriteOFF(w)
	case "ply":
		w.Header().Set("Content-Type", "text/plain")
		m.WritePLY(w)
	case "", "json":
		verts := make([][3]float64, len(m.Vertices))
		for i, v := range m.Vertices {
			verts[i] = [3]float64{v.X, v.Y, v.Z}
		}
		faces := make([][3]int32, len(m.Faces))
		for i, f := range m.Faces {
			faces[i] = [3]int32(f)
		}
		s.writeJSON(w, map[string]any{
			"lod":      lod,
			"vertices": verts,
			"faces":    faces,
			"volume":   m.Volume(),
		})
	default:
		s.writeErr(w, r, badRequest("unknown format %q", format))
	}
}

// queryRequest is the shared JSON body of the join endpoints.
type queryRequest struct {
	Target   string     `json:"target"`
	Source   string     `json:"source"`
	Dataset  string     `json:"dataset"`
	Paradigm string     `json:"paradigm"` // "fr" | "fpr" (default fpr)
	Accel    string     `json:"accel"`    // brute|aabb|partition|gpu|partition+gpu
	Dist     float64    `json:"dist"`
	K        int        `json:"k"`
	LODs     []int      `json:"lods"`
	Point    [3]float64 `json:"point"`
	Min      [3]float64 `json:"min"`
	Max      [3]float64 `json:"max"`
	// OnError selects the partial-failure policy: "fail_fast" (default)
	// aborts on the first object failure, "degrade" skips failing objects
	// and reports them in the stats. ErrorBudget bounds the distinct failed
	// objects a degrade query tolerates (0 = engine default, -1 = unlimited).
	OnError     string `json:"on_error"`
	ErrorBudget int    `json:"error_budget"`
	// Trace requests the per-query span timeline; the aggregated events
	// come back in the response's stats.trace.
	Trace bool `json:"trace"`
	// Sched selects the LOD scheduling policy: "margin" (default) for the
	// online-calibrated margin scheduler, "static" for the paper's §4.4
	// reference rule. Both return byte-identical results.
	Sched string `json:"sched"`
}

func (s *Server) parseJoin(r *http.Request) (*core.Dataset, *core.Dataset, core.QueryOptions, queryRequest, error) {
	var req queryRequest
	var q core.QueryOptions
	if err := decodeBody(r, &req); err != nil {
		return nil, nil, q, req, err
	}
	target, ok := s.dataset(req.Target)
	if !ok {
		return nil, nil, q, req, notFound("target dataset %q not loaded", req.Target)
	}
	source, ok := s.dataset(req.Source)
	if !ok {
		return nil, nil, q, req, notFound("source dataset %q not loaded", req.Source)
	}
	q, err := options(req)
	return target, source, q, req, err
}

func options(req queryRequest) (core.QueryOptions, error) {
	q := core.QueryOptions{Paradigm: core.FPR, K: req.K, LODs: req.LODs}
	switch req.Paradigm {
	case "", "fpr":
	case "fr":
		q.Paradigm = core.FR
	default:
		return q, badRequest("unknown paradigm %q", req.Paradigm)
	}
	switch req.Accel {
	case "", "aabb":
		q.Accel = core.AABB
	case "brute":
		q.Accel = core.BruteForce
	case "partition":
		q.Accel = core.Partition
	case "gpu":
		q.Accel = core.GPU
	case "partition+gpu":
		q.Accel = core.PartitionGPU
	default:
		return q, badRequest("unknown accel %q", req.Accel)
	}
	switch req.OnError {
	case "", "fail_fast":
	case "degrade":
		q.OnError = core.Degrade
	default:
		return q, badRequest("unknown on_error %q (want fail_fast or degrade)", req.OnError)
	}
	switch req.Sched {
	case "", "margin":
	case "static":
		q.Sched = core.SchedStatic
	default:
		return q, badRequest("unknown sched %q (want margin or static)", req.Sched)
	}
	q.ErrorBudget = req.ErrorBudget
	q.Trace = req.Trace
	return q, nil
}

// statsJSON is the serialized execution statistics.
type statsJSON struct {
	ElapsedMS  float64 `json:"elapsed_ms"`
	FilterMS   float64 `json:"filter_ms"`
	DecodeMS   float64 `json:"decode_ms"`
	GeomMS     float64 `json:"geom_ms"`
	Candidates int64   `json:"candidates"`
	Results    int64   `json:"results"`
	Decodes    int64   `json:"decodes"`
	CacheHits  int64   `json:"cache_hits"`
	// Warm-start counters: misses that resumed a retained progressive
	// decoder, decode rounds replayed, and rounds the resumes skipped
	// (cold cost = rounds_applied + rounds_skipped).
	WarmStarts    int64 `json:"warm_starts"`
	RoundsApplied int64 `json:"rounds_applied"`
	RoundsSkipped int64 `json:"rounds_skipped"`
	// Batch-pipeline counters: device batches the refine stage dispatched
	// and the face pairs those batches spanned (0 under ExecPerPair).
	BatchesDispatched int64 `json:"batches_dispatched"`
	BatchPairs        int64 `json:"batch_pairs"`
	// Margin-scheduler counters: ladder entries skipped by margin routing
	// and pairs settled by filter-phase bounds alone (both 0 under
	// sched=static, except bounds-driven NN prunes which count always).
	LODsSkippedByMargin int64   `json:"lods_skipped_by_margin"`
	BoundsDecisive      int64   `json:"bounds_decisive"`
	Evaluated           []int64 `json:"pairs_evaluated_per_lod"`
	Pruned              []int64 `json:"pairs_pruned_per_lod"`
	// Partial-failure accounting (degrade policy). The response's pairs are
	// the certain answer; uncertain lists relations a failure left
	// unsettled (source -1 = unknown candidate set of that target) and
	// degraded the skipped objects with their failures. The numeric
	// counters serialize even at zero: dashboards and scrapers must be able
	// to tell "zero failures" apart from "field absent in this version".
	Uncertain       []core.Pair        `json:"uncertain,omitempty"`
	UncertainIDs    []int64            `json:"uncertain_ids,omitempty"`
	Degraded        []core.ObjectError `json:"degraded,omitempty"`
	QuarantineSkips int64              `json:"quarantine_skips"`
	DecodeRetries   int64              `json:"decode_retries"`
	DecodeFailures  int64              `json:"decode_failures"`
	// Trace carries the aggregated span timeline when the request set
	// "trace": true.
	Trace []obs.TraceEvent `json:"trace,omitempty"`
	// Shards carries the per-shard breakdown of a coordinated query. The
	// coordinator's counters above are exactly the sum of the per-shard
	// stats here (degraded shards included — their synthesized stats hold
	// the uncertainty their loss caused).
	Shards []shardStatJSON `json:"shards,omitempty"`
}

// shardStatJSON is the serialized per-shard outcome of a coordinated query.
type shardStatJSON struct {
	Shard     int        `json:"shard"`
	Status    string     `json:"status"`
	Attempts  int        `json:"attempts"`
	Hedged    bool       `json:"hedged,omitempty"`
	HedgeWon  bool       `json:"hedge_won,omitempty"`
	Replica   int        `json:"replica"`
	Err       string     `json:"error,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Stats     *statsJSON `json:"stats,omitempty"`
}

func statsOut(st *core.Stats) statsJSON {
	out := baseStatsOut(st)
	for _, ss := range st.Shards {
		sj := shardStatJSON{
			Shard:     ss.Shard,
			Status:    ss.Status,
			Attempts:  ss.Attempts,
			Hedged:    ss.Hedged,
			HedgeWon:  ss.HedgeWon,
			Replica:   ss.Replica,
			Err:       ss.Err,
			ElapsedMS: float64(ss.Elapsed) / float64(time.Millisecond),
		}
		if ss.Stats != nil {
			nested := baseStatsOut(ss.Stats)
			sj.Stats = &nested
		}
		out.Shards = append(out.Shards, sj)
	}
	return out
}

func baseStatsOut(st *core.Stats) statsJSON {
	return statsJSON{
		ElapsedMS:           float64(st.Elapsed) / float64(time.Millisecond),
		FilterMS:            float64(st.FilterTime) / float64(time.Millisecond),
		DecodeMS:            float64(st.DecodeTime) / float64(time.Millisecond),
		GeomMS:              float64(st.GeomTime) / float64(time.Millisecond),
		Candidates:          st.Candidates,
		Results:             st.Results,
		Decodes:             st.Decodes,
		CacheHits:           st.CacheHits,
		WarmStarts:          st.WarmStarts,
		RoundsApplied:       st.RoundsApplied,
		RoundsSkipped:       st.RoundsSkipped,
		BatchesDispatched:   st.BatchesDispatched,
		BatchPairs:          st.BatchPairs,
		LODsSkippedByMargin: st.LODsSkippedByMargin,
		BoundsDecisive:      st.BoundsDecisive,
		Evaluated:           st.PairsEvaluated,
		Pruned:              st.PairsPruned,
		Uncertain:           st.Uncertain,
		UncertainIDs:        st.UncertainIDs,
		Degraded:            st.Degraded,
		QuarantineSkips:     st.QuarantineSkips,
		DecodeRetries:       st.DecodeRetries,
		DecodeFailures:      st.DecodeFailures,
		Trace:               st.Trace,
	}
}

func (s *Server) handleIntersect(w http.ResponseWriter, r *http.Request) {
	target, source, q, req, err := s.parseJoin(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var pairs []core.Pair
	var stats *core.Stats
	if s.coord != nil {
		pairs, stats, err = s.coord.IntersectJoin(r.Context(), req.Target, req.Source, q)
	} else {
		pairs, stats, err = s.eng.IntersectJoin(r.Context(), target, source, q)
	}
	if stats != nil {
		s.noteQuery(r, "intersect", stats, err)
	}
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.writeJSON(w, map[string]any{"pairs": pairs, "stats": statsOut(stats)})
}

func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	target, source, q, req, err := s.parseJoin(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if req.Dist <= 0 {
		s.writeErr(w, r, badRequest("dist must be positive"))
		return
	}
	var pairs []core.Pair
	var stats *core.Stats
	if s.coord != nil {
		pairs, stats, err = s.coord.WithinJoin(r.Context(), req.Target, req.Source, req.Dist, q)
	} else {
		pairs, stats, err = s.eng.WithinJoin(r.Context(), target, source, req.Dist, q)
	}
	if stats != nil {
		s.noteQuery(r, "within", stats, err)
	}
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.writeJSON(w, map[string]any{"pairs": pairs, "stats": statsOut(stats)})
}

func (s *Server) handleNN(w http.ResponseWriter, r *http.Request) {
	target, source, q, req, err := s.parseJoin(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var ns []core.Neighbor
	var stats *core.Stats
	if s.coord != nil {
		ns, stats, err = s.coord.KNNJoin(r.Context(), req.Target, req.Source, q)
	} else {
		ns, stats, err = s.eng.KNNJoin(r.Context(), target, source, q)
	}
	if stats != nil {
		s.noteQuery(r, "nn", stats, err)
	}
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.writeJSON(w, map[string]any{"neighbors": ns, "stats": statsOut(stats)})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, r, err)
		return
	}
	d, ok := s.dataset(req.Dataset)
	if !ok {
		s.writeErr(w, r, notFound("dataset %q not loaded", req.Dataset))
		return
	}
	q, err := options(req)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	box := geom.Box3{
		Min: geom.V(req.Min[0], req.Min[1], req.Min[2]),
		Max: geom.V(req.Max[0], req.Max[1], req.Max[2]),
	}
	if box.IsEmpty() {
		s.writeErr(w, r, badRequest("empty query box"))
		return
	}
	var ids []int64
	var stats *core.Stats
	if s.coord != nil {
		ids, stats, err = s.coord.RangeQuery(r.Context(), req.Dataset, box, q)
	} else {
		ids, stats, err = s.eng.RangeQuery(r.Context(), d, box, q)
	}
	if stats != nil {
		s.noteQuery(r, "range", stats, err)
	}
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.writeJSON(w, map[string]any{"objects": ids, "stats": statsOut(stats)})
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, r, err)
		return
	}
	d, ok := s.dataset(req.Dataset)
	if !ok {
		s.writeErr(w, r, notFound("dataset %q not loaded", req.Dataset))
		return
	}
	q, err := options(req)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	p := geom.V(req.Point[0], req.Point[1], req.Point[2])
	var ids []int64
	var stats *core.Stats
	if s.coord != nil {
		ids, stats, err = s.coord.ContainingObjects(r.Context(), req.Dataset, p, q)
	} else {
		ids, stats, err = s.eng.ContainingObjects(r.Context(), d, p, q)
	}
	if stats != nil {
		s.noteQuery(r, "point", stats, err)
	}
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.writeJSON(w, map[string]any{"objects": ids, "stats": statsOut(stats)})
}
