package server

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/quarantine"
)

// Config tunes the production-hardening layer of the server. The zero value
// selects the documented defaults.
type Config struct {
	// QueryTimeout bounds each query request's context; a query that
	// exceeds it returns 504. Zero means the 30s default, negative
	// disables the deadline.
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently admitted query requests; excess
	// requests are shed with 503 + Retry-After. Default 2×GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps request body sizes (default 1 MiB). Oversized
	// bodies return 413.
	MaxBodyBytes int64
	// ShutdownGrace bounds connection draining during graceful shutdown
	// (default 15s); connections still open after it are closed hard.
	ShutdownGrace time.Duration
	// Logger receives middleware and lifecycle logs (default log.Default()).
	Logger *log.Logger
	// Slog receives the structured access log — one record per request with
	// the request ID, method, path, status, and latency (default
	// slog.Default()).
	Slog *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiling endpoints expose memory contents and must not
	// face untrusted clients.
	EnablePprof bool
}

func (c *Config) setDefaults() {
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.Slog == nil {
		c.Slog = slog.Default()
	}
}

// SetReady overrides the /readyz state; Serve flips it to false on its own
// when shutdown begins.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports whether the server should receive traffic: it is not
// shutting down and has at least one dataset loaded. A non-empty quarantine
// — or, in sharded mode, an open shard breaker — keeps the server in
// rotation (degraded beats dead — Degrade-policy queries still answer with
// certain results) but the body says so, so operators and probes that
// scrape the text can tell the states apart.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	loaded := len(s.datasets)
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain")
	switch {
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case loaded == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no datasets loaded")
	default:
		w.WriteHeader(http.StatusOK)
		switch {
		case s.coord != nil && s.coord.Degraded():
			fmt.Fprintf(w, "degraded: %d shard breakers open\n", s.coord.Breaker().Len())
		case s.eng != nil && s.eng.Quarantine().Len() > 0:
			fmt.Fprintf(w, "degraded: %d objects quarantined\n", s.eng.Quarantine().Len())
		default:
			fmt.Fprintln(w, "ready")
		}
	}
}

// handleStatusz is the operator inspection endpoint: engine cache counters,
// the quarantine registry's aggregate stats and per-object entries (with
// dataset sequence numbers resolved back to names where possible), the
// admission-control load, and — in sharded mode — per-shard health and the
// coordinator's retry/hedge/breaker counters.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	seqNames := make(map[int64]string, len(s.datasets))
	names := make([]string, 0, len(s.datasets))
	for name, d := range s.datasets {
		seqNames[d.Seq()] = name
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)

	out := map[string]any{
		"ready":    s.ready.Load(),
		"datasets": names,
		"inflight": map[string]int{"used": len(s.inflight), "max": s.cfg.MaxInFlight},
	}

	if s.eng != nil {
		type quarEntry struct {
			quarantine.Entry
			DatasetName string `json:"dataset,omitempty"`
		}
		snap := s.eng.Quarantine().Snapshot()
		entries := make([]quarEntry, len(snap))
		for i, e := range snap {
			entries[i] = quarEntry{Entry: e, DatasetName: seqNames[e.Dataset]}
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Dataset != entries[j].Dataset {
				return entries[i].Dataset < entries[j].Dataset
			}
			return entries[i].Object < entries[j].Object
		})

		cs := s.eng.Cache().Stats()
		out["cache"] = map[string]int64{
			"hits": cs.Hits, "misses": cs.Misses, "evictions": cs.Evictions,
			"bytes_used": cs.BytesUsed, "warm_starts": cs.WarmStarts,
			"rounds_applied": cs.RoundsApplied, "rounds_skipped": cs.RoundsSkipped,
			"decode_failures": cs.DecodeFailures,
		}
		out["quarantine"] = map[string]any{
			"stats":   s.eng.Quarantine().Stats(),
			"entries": entries,
		}
		// The margin scheduler's online calibration state: one entry per
		// observed (kind, LOD) with its pruned-fraction EWMA and histogram
		// summary, so operators can see which ladder the next margin query
		// of each kind will get.
		out["sched"] = s.eng.SchedCalibration()
	}

	if s.coord != nil {
		out["shards"] = map[string]any{
			"count":    s.coord.Shards(),
			"replicas": s.coord.Replicas(),
			"degraded": s.coord.Degraded(),
			"health":   s.coord.Health(),
			"metrics":  s.coord.Metrics(),
			"breaker":  s.coord.Breaker().Stats(),
		}
	}

	s.writeJSON(w, out)
}

// recoverPanics converts a handler panic into a 500 and a stack-trace log
// entry, keeping the process alive. http.ErrAbortHandler (the sanctioned
// way to abort a response) is re-raised for net/http to handle.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeErrStatus(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limitBody caps every request body at cfg.MaxBodyBytes; reading past the
// cap fails the read with *http.MaxBytesError, which decodeBody maps to 413.
func (s *Server) limitBody(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// query wraps a query handler with admission control and the per-query
// deadline. Admission never queues: when MaxInFlight requests are already
// running, the request is shed immediately with 503 + Retry-After so the
// client can back off or try a replica.
func (s *Server) query(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.obs.admissionRej.Inc()
			w.Header().Set("Retry-After", "1")
			writeErrStatus(w, http.StatusServiceUnavailable,
				fmt.Sprintf("server at capacity (%d queries in flight)", s.cfg.MaxInFlight))
			return
		}
		if s.cfg.QueryTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	})
}

// Run listens on addr and serves until ctx is cancelled, then drains
// gracefully. Wire ctx to SIGINT/SIGTERM (signal.NotifyContext) for clean
// operational shutdown; a nil error means every in-flight request finished.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve serves the API on ln until ctx is cancelled. It then flips /readyz
// to draining, stops accepting connections, and waits up to
// cfg.ShutdownGrace for in-flight requests to finish before closing the
// stragglers.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
		ErrorLog:          s.log,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.ready.Store(false)
	s.log.Printf("server: shutdown requested, draining for up to %s", s.cfg.ShutdownGrace)
	//lint:ignore ctxflow the drain deadline must outlive the run context, which is already canceled at this point; a fresh root is deliberate
	shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		srv.Close()
		return fmt.Errorf("server: drain incomplete: %w", err)
	}
	s.log.Printf("server: drained cleanly")
	return nil
}
