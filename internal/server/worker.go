package server

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// workerBodyLimit caps worker request bodies. Dataset installs ship a whole
// home group's compressed blobs in one PUT, so the frontend's 1 MiB default
// would reject legitimate installs; queries stay far below this too.
const workerBodyLimit = 256 << 20

// Worker is the HTTP face of one shard process: a shard.Node behind the
// shard wire protocol (POST /shard/query, PUT /shard/dataset) plus the
// operational endpoints a coordinator's prober and an orchestrator expect
// (/healthz, /readyz). Run with `3dpro-server -shard-worker -listen :PORT`.
//
// A worker deliberately has no query-level admission control or timeout:
// the coordinator owns the query deadline (it rides the request context via
// the client disconnecting) and its scatter fan-out bounds concurrency.
type Worker struct {
	node  *shard.Node
	ready atomic.Bool
	log   *log.Logger
	slog  *slog.Logger
	grace time.Duration
}

// NewWorker wraps a shard node for serving. cfg supplies the logger and
// shutdown grace; its query-frontend fields (timeouts, admission) do not
// apply to workers.
func NewWorker(node *shard.Node, cfg Config) *Worker {
	cfg.setDefaults()
	w := &Worker{node: node, log: cfg.Logger, slog: cfg.Slog, grace: cfg.ShutdownGrace}
	w.ready.Store(true)
	return w
}

// Node exposes the wrapped shard node (tests).
func (w *Worker) Node() *shard.Node { return w.node }

// SetReady overrides the /readyz state; Serve flips it to false on its own
// when shutdown begins, which tells the coordinator's prober to keep the
// worker's breaker open while it drains.
func (w *Worker) SetReady(ready bool) { w.ready.Store(ready) }

// Handler returns the worker's full route set with its middleware stack.
func (w *Worker) Handler() http.Handler {
	mux := shard.WorkerMux(w.node)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/readyz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain")
		if !w.ready.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(rw, "draining")
			return
		}
		fmt.Fprintln(rw, "ready")
	})
	return w.instrument(w.recoverPanics(w.limitBody(mux)))
}

// instrument echoes the coordinator's propagated request ID and emits one
// access-log line per request, so a query's scatter legs can be correlated
// across the worker fleet.
func (w *Worker) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		rw.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: rw}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		w.slog.LogAttrs(r.Context(), slog.LevelInfo, "worker request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("elapsed", time.Since(start)),
		)
	})
}

// recoverPanics keeps the worker process alive through a handler panic; the
// coordinator sees the 500 as a transport-class error and retries or fails
// over.
func (w *Worker) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				w.log.Printf("worker: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeErrStatus(rw, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(rw, r)
	})
}

func (w *Worker) limitBody(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(rw, r.Body, workerBodyLimit)
		}
		next.ServeHTTP(rw, r)
	})
}

// Run listens on addr and serves until ctx is cancelled, then drains
// gracefully.
func (w *Worker) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return w.Serve(ctx, ln)
}

// Serve serves the worker on ln until ctx is cancelled, then flips /readyz
// to draining — so the prober stops steering queries back — and waits up to
// the shutdown grace for in-flight scatter legs to finish before closing
// stragglers.
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           w.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       90 * time.Second,
		ErrorLog:          w.log,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	w.ready.Store(false)
	w.log.Printf("worker: shutdown requested, draining for up to %s", w.grace)
	//lint:ignore ctxflow the drain deadline must outlive the run context, which is already canceled at this point; a fresh root is deliberate
	shCtx, cancel := context.WithTimeout(context.Background(), w.grace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		srv.Close()
		return fmt.Errorf("worker: drain incomplete: %w", err)
	}
	w.log.Printf("worker: drained cleanly")
	return nil
}
