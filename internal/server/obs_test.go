package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/ppvp"
)

// obsServer builds a dedicated server (the shared testServer would make the
// metric assertions order-dependent across tests) with one small dataset
// pair and returns it alongside the underlying *Server for config tweaks.
func obsServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	eng := core.NewEngine(core.EngineOptions{Workers: 2})
	comp := ppvp.DefaultOptions()
	comp.Rounds = 6
	dopts := core.DatasetOptions{Compression: comp, Cuboids: 8}
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(60, 60, 60)}
	ma, mb := datagen.NucleiPair(datagen.NucleiOptions{Count: 8, SubdivisionLevel: 1, Seed: 51, Space: space})
	a, err := eng.BuildDataset("alpha", ma, dopts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.BuildDataset("beta", mb, dopts)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(eng, cfg)
	s.AddDataset(a)
	s.AddDataset(b)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// TestMetricsEndpoint is the observability smoke test: after serving a
// query, /metrics must expose valid Prometheus text containing every
// documented family with its documented type.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	if resp := postJSON(t, ts.URL+"/query/within",
		`{"target":"alpha","source":"beta","dist":25}`, nil); resp.StatusCode != 200 {
		t.Fatalf("query status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheusText(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	want := map[string]string{
		"threedpro_queries_total":               "counter",
		"threedpro_query_duration_seconds":      "histogram",
		"threedpro_query_phase_seconds_total":   "counter",
		"threedpro_query_decode_rounds":         "histogram",
		"threedpro_admission_rejected_total":    "counter",
		"threedpro_queries_inflight":            "gauge",
		"threedpro_cache_hits_total":            "counter",
		"threedpro_cache_misses_total":          "counter",
		"threedpro_cache_evictions_total":       "counter",
		"threedpro_cache_warm_starts_total":     "counter",
		"threedpro_cache_rounds_applied_total":  "counter",
		"threedpro_cache_rounds_skipped_total":  "counter",
		"threedpro_cache_decode_failures_total": "counter",
		"threedpro_cache_bytes_used":            "gauge",
		"threedpro_quarantine_open":             "gauge",
		"threedpro_quarantine_half_open":        "gauge",
		"threedpro_quarantine_tracked":          "gauge",
		"threedpro_quarantine_trips_total":      "counter",
		"threedpro_quarantine_failures_total":   "counter",
		"threedpro_quarantine_skips_total":      "counter",
		"threedpro_quarantine_reinstated_total": "counter",
	}
	for name, typ := range want {
		if got, ok := fams[name]; !ok {
			t.Errorf("family %q missing from scrape", name)
		} else if got != typ {
			t.Errorf("family %q has type %q, want %q", name, got, typ)
		}
	}
	// The query above must have been counted.
	if !strings.Contains(string(body), `threedpro_queries_total{kind="within",status="ok"} 1`) {
		t.Errorf("within query not counted:\n%s", grepLines(string(body), "threedpro_queries_total"))
	}
	if !strings.Contains(string(body), "threedpro_cache_misses_total") {
		t.Error("cache misses family missing")
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestStatsJSONZeroCounters: the failure counters must serialize even when
// zero — a scraper has to distinguish "no failures" from "field not
// reported". (They used to carry omitempty and vanish on healthy queries.)
func TestStatsJSONZeroCounters(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	var out struct {
		Stats map[string]json.RawMessage `json:"stats"`
	}
	if resp := postJSON(t, ts.URL+"/query/point",
		`{"dataset":"alpha","point":[30,30,30]}`, &out); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, key := range []string{"quarantine_skips", "decode_retries", "decode_failures"} {
		raw, ok := out.Stats[key]
		if !ok {
			t.Errorf("healthy query's stats omit %q", key)
			continue
		}
		if string(raw) != "0" {
			t.Errorf("stats[%q] = %s, want 0", key, raw)
		}
	}
	// Round-trip: the serialized stats decode back into statsJSON unchanged.
	var sj statsJSON
	buf, _ := json.Marshal(out.Stats)
	if err := json.Unmarshal(buf, &sj); err != nil {
		t.Fatalf("stats do not round-trip through statsJSON: %v", err)
	}
	if sj.QuarantineSkips != 0 || sj.DecodeRetries != 0 || sj.DecodeFailures != 0 {
		t.Errorf("round-tripped counters: %+v", sj)
	}
}

// TestQueryTraceOverHTTP: "trace": true in the request returns the span
// timeline in stats.trace; without it the field is absent.
func TestQueryTraceOverHTTP(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	var traced struct {
		Stats struct {
			Trace []obs.TraceEvent `json:"trace"`
		} `json:"stats"`
	}
	if resp := postJSON(t, ts.URL+"/query/nn",
		`{"target":"alpha","source":"beta","trace":true}`, &traced); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(traced.Stats.Trace) == 0 {
		t.Fatal("traced query returned no trace events")
	}
	names := map[string]bool{}
	for _, ev := range traced.Stats.Trace {
		names[ev.Name] = true
	}
	if !names["filter"] || !names["evaluate"] {
		t.Errorf("trace lacks expected spans: %v", names)
	}

	var plain struct {
		Stats map[string]json.RawMessage `json:"stats"`
	}
	if resp := postJSON(t, ts.URL+"/query/nn",
		`{"target":"alpha","source":"beta"}`, &plain); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, ok := plain.Stats["trace"]; ok {
		t.Error("untraced query serialized a trace field")
	}
}

// TestDebugQueries: the ring buffer surfaces recent queries newest-first
// with their kind, status, and counters.
func TestDebugQueries(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	postJSON(t, ts.URL+"/query/point", `{"dataset":"alpha","point":[30,30,30]}`, nil)
	postJSON(t, ts.URL+"/query/range", `{"dataset":"alpha","min":[0,0,0],"max":[60,60,60]}`, nil)

	var out struct {
		Total   int64              `json:"total"`
		Queries []obs.QuerySummary `json:"queries"`
	}
	if resp := getJSON(t, ts.URL+"/debug/queries", &out); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Total != 2 || len(out.Queries) != 2 {
		t.Fatalf("total = %d, entries = %d, want 2/2", out.Total, len(out.Queries))
	}
	// Newest first.
	if out.Queries[0].Kind != "range" || out.Queries[1].Kind != "point" {
		t.Errorf("order: %q then %q", out.Queries[0].Kind, out.Queries[1].Kind)
	}
	for _, qs := range out.Queries {
		if qs.Status != "ok" {
			t.Errorf("query %q status %q", qs.Kind, qs.Status)
		}
		if qs.ID == "" {
			t.Errorf("query %q has no request ID", qs.Kind)
		}
		if qs.ElapsedMS < 0 {
			t.Errorf("query %q elapsed %v", qs.Kind, qs.ElapsedMS)
		}
	}
	// Parse-level failures (unknown dataset, bad box) never reach the
	// engine and must not pollute the ring.
	postJSON(t, ts.URL+"/query/point", `{"dataset":"nope","point":[0,0,0]}`, nil)
	getJSON(t, ts.URL+"/debug/queries", &out)
	if out.Total != 2 {
		t.Errorf("parse failure entered the query ring: total = %d", out.Total)
	}
}

// TestRequestIDHeader: every response carries an X-Request-ID, and an
// incoming ID is honored end to end.
func TestRequestIDHeader(t *testing.T) {
	ts, _ := obsServer(t, Config{})
	resp := getJSON(t, ts.URL+"/healthz", nil)
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Error("no X-Request-ID on response")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-chosen-id")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get("X-Request-ID"); id != "caller-chosen-id" {
		t.Errorf("incoming ID not honored: got %q", id)
	}

	// The ID propagates into the query log.
	req, _ = http.NewRequest("POST", ts.URL+"/query/point", strings.NewReader(`{"dataset":"alpha","point":[30,30,30]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "query-trace-id")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	var out struct {
		Queries []obs.QuerySummary `json:"queries"`
	}
	getJSON(t, ts.URL+"/debug/queries", &out)
	if len(out.Queries) == 0 || out.Queries[0].ID != "query-trace-id" {
		t.Errorf("query log did not record the caller's request ID: %+v", out.Queries)
	}
}

// TestPprofGate: the profiling endpoints exist only when EnablePprof is set.
func TestPprofGate(t *testing.T) {
	tsOff, _ := obsServer(t, Config{})
	if resp := getJSON(t, tsOff.URL+"/debug/pprof/", nil); resp.StatusCode != 404 {
		t.Errorf("pprof reachable without the flag: status %d", resp.StatusCode)
	}
	tsOn, _ := obsServer(t, Config{EnablePprof: true})
	if resp := getJSON(t, tsOn.URL+"/debug/pprof/", nil); resp.StatusCode != 200 {
		t.Errorf("pprof flag set but index returned %d", resp.StatusCode)
	}
}
